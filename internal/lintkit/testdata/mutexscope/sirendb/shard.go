// Fixture: mutexscope enforces the group-commit discipline — index work
// and page-cache appends may ride under the shard mutex, blocking work may
// not — and encodes the sanctioned escapes (syncMu, goroutines, unlock
// before flush).
package sirendb

import (
	"os"
	"sync"
	"time"
)

func fdatasync(f *os.File) error { return f.Sync() }

type shard struct {
	mu     sync.Mutex
	syncMu sync.Mutex
	f      *os.File
	rows   int
}

func (s *shard) badFsync() {
	s.mu.Lock()
	_ = fdatasync(s.f) // want "fdatasync while s.mu is held"
	s.mu.Unlock()
}

func (s *shard) badDeferredUnlock() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.f.Sync() // want "Sync .durability flush. while s.mu is held"
}

func (s *shard) badSleep() {
	s.mu.Lock()
	defer s.mu.Unlock()
	time.Sleep(time.Millisecond) // want "time.Sleep while s.mu is held"
}

func (s *shard) badChannel(ch chan int) {
	s.mu.Lock()
	ch <- s.rows // want "channel send while s.mu is held"
	<-ch         // want "channel receive while s.mu is held"
	s.mu.Unlock()
}

func (s *shard) badSelect(ch chan int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want "select without default while s.mu is held"
	case <-ch:
	}
}

func (s *shard) badWait(wg *sync.WaitGroup) {
	s.mu.Lock()
	defer s.mu.Unlock()
	wg.Wait() // want "wg.Wait while s.mu is held"
}

// The group-commit pattern itself: mutate under mu, release, then flush.
func (s *shard) goodUnlockThenFlush() error {
	s.mu.Lock()
	s.rows++
	s.mu.Unlock()
	return fdatasync(s.f) // ok: mutex released
}

// syncMu exists to serialize the flush outside mu; holding it during
// fdatasync is the design, not a violation.
func (s *shard) goodSyncMu() error {
	s.syncMu.Lock()
	defer s.syncMu.Unlock()
	return fdatasync(s.f) // ok: syncMu is the flush-serialization lock
}

// A goroutine does not inherit the launcher's locks.
func (s *shard) goodGoroutine(done chan struct{}) {
	s.mu.Lock()
	go func() {
		_ = fdatasync(s.f) // ok: runs outside the launcher's critical section
		close(done)
	}()
	s.mu.Unlock()
}

// Branches that unlock on every path fall through unheld.
func (s *shard) goodBranchUnlock(fail bool) error {
	s.mu.Lock()
	if fail {
		s.mu.Unlock()
		return nil
	}
	s.rows++
	s.mu.Unlock()
	return fdatasync(s.f) // ok: both paths released mu
}

// Non-blocking work under the mutex is the fast path and stays silent.
func (s *shard) goodFastPath(buf []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rows++
	return s.f.Write(buf) // ok: page-cache append is the group-commit design
}

type store struct {
	shards []*shard
	dir    *os.File
}

// The freeze-the-world pattern: locks taken in a loop with deferred
// unlocks are still held after the loop — blocking work there is flagged
// (and the real compaction path documents itself with //lint:ignore).
func (st *store) badLockAllThenFsync() error {
	for _, s := range st.shards {
		s.mu.Lock()
		defer s.mu.Unlock()
	}
	return fdatasync(st.dir) // want "fdatasync while s.mu is held"
}

// An unlock-and-return guard arm does not fall through: the mutex is still
// held on the straight-line path and releasing it there is clean.
func (st *store) goodGuardedUnlock(s *shard) error {
	s.mu.Lock()
	if s.f == nil {
		s.mu.Unlock()
		return nil
	}
	s.rows++
	s.mu.Unlock()
	return fdatasync(s.f) // ok: every live path released mu
}

// Select with a default never blocks; the dirty-channel nudge pattern.
func (s *shard) goodSelectDefault(dirty chan struct{}) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rows++
	select {
	case dirty <- struct{}{}:
	default:
	}
}
