// Fixture: snapshotmut flags every in-place mutation shape on accessor
// results — direct and via aliases — and accepts copy-first code.
package consumer

import (
	"sort"

	"fix/sirendb"
)

func bad(snap *sirendb.Snapshot) {
	rows := snap.Jobs()
	rows[0].Seq = 1                                                            // want "element write through snapshot accessor Jobs"
	sort.Slice(rows, func(i, j int) bool { return rows[i].Seq < rows[j].Seq }) // want "sort.Slice mutates snapshot accessor Jobs result in place"

	snap.Jobs()[0] = sirendb.Row{} // want "element write through snapshot accessor Jobs"

	alias := rows
	alias[1].Seq = 2 // want "element write through snapshot accessor Jobs"

	rows = append(rows, sirendb.Row{}) // want "self-append on snapshot accessor Jobs result"
	_ = rows

	m := snap.ByJob()
	delete(m, "job-1") // want "delete on snapshot accessor ByJob result"
	m["job-2"] = nil   // want "element write through snapshot accessor ByJob"
}

func good(snap *sirendb.Snapshot) []sirendb.Row {
	// Copy-first is the sanctioned pattern: the copy is yours to mutate.
	cp := append([]sirendb.Row(nil), snap.Jobs()...)
	cp[0].Seq = 1                                                        // ok: cp is a fresh copy
	sort.Slice(cp, func(i, j int) bool { return cp[i].Seq < cp[j].Seq }) // ok

	// Reading is what snapshots are for.
	total := 0
	for _, r := range snap.Jobs() {
		total += r.Seq
	}
	byJob := snap.ByJob()
	_ = len(byJob["job-1"])

	fresh := make([]sirendb.Row, 0, total)
	fresh = append(fresh, cp...) // ok: fresh local slice
	return fresh
}
