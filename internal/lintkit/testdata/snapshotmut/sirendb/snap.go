// Fixture stand-in for the real store: a Snapshot whose accessors hand out
// shared slices and maps, exactly like internal/sirendb.
package sirendb

type Row struct {
	Seq int
	Job string
}

type Snapshot struct {
	rows  []Row
	byJob map[string][]Row
}

func New(rows []Row) *Snapshot {
	byJob := make(map[string][]Row)
	for _, r := range rows {
		byJob[r.Job] = append(byJob[r.Job], r)
	}
	return &Snapshot{rows: rows, byJob: byJob}
}

// Jobs returns the shared row slice — callers must not modify it.
func (s *Snapshot) Jobs() []Row { return s.rows }

// ByJob returns the shared per-job map — callers must not modify it.
func (s *Snapshot) ByJob() map[string][]Row { return s.byJob }
