// Fixture: walltime stays out of non-analysis packages — instrumentation
// and deadlines in the serving or ingest tiers are legitimate.
package other

import "time"

func Uptime(start time.Time) time.Duration {
	return time.Since(start) // ok: not an analysis package
}

func Stamp() int64 {
	return time.Now().UnixNano() // ok: not an analysis package
}
