// Fixture: walltime fires in analysis-tier packages.
package analysis

import "time"

// Score is "analysis" work: it must be a pure function of its inputs.
func Score(deadline time.Time) int64 {
	start := time.Now()      // want "time.Now in deterministic package analysis"
	_ = time.Since(start)    // want "time.Since in deterministic package analysis"
	_ = time.Until(deadline) // want "time.Until in deterministic package analysis"

	// Pure time-package use is fine: constructing and comparing instants
	// handed in by the caller does not read the wall clock.
	epoch := time.Unix(0, 0)
	if deadline.After(epoch) {
		return deadline.UnixNano()
	}
	var d time.Duration = 5 * time.Millisecond
	return int64(d)
}
