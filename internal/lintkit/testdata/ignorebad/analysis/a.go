// Fixture: a //lint:ignore with no reason is itself a finding and
// suppresses nothing. (Checked by TestMalformedDirectiveSurfacesInRun, not
// by want comments: the engine reports on the directive's own line, which
// a line-comment cannot also annotate.)
package analysis

import "time"

func stamp() int64 {
	//lint:ignore walltime
	return time.Now().Unix()
}
