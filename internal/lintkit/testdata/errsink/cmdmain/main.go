// Fixture: errsink also covers commands — shutdown sequences in package
// main are exactly where dropped Close errors hide data loss.
package main

import "os"

func main() {
	f, err := os.Open("x")
	if err != nil {
		return
	}
	defer f.Close() // want "error from Close discarded by defer"
	f.Sync()        // want "error from Sync discarded"
}
