// Fixture: the run-file layer is a durability package — a run is only
// sealed once its bytes and directory entry are fsynced, so a dropped
// Sync/Close error here silently un-commits a generation.
package runfmt

import (
	"errors"
	"os"
)

type writer struct{ f *os.File }

func bad(w *writer) {
	w.f.Sync()  // want "error from Sync discarded"
	w.f.Close() // want "error from Close discarded"
}

func badDefer(w *writer) {
	defer w.f.Close() // want "error from Close discarded by defer"
}

func good(w *writer) (err error) {
	defer func() { err = errors.Join(err, w.f.Close()) }() // ok: joined into the return
	return w.f.Sync()
}

func goodExplicit(w *writer, failed error) error {
	if failed != nil {
		_ = w.f.Close() // ok: visibly deliberate discard on an already-failing path
		return failed
	}
	return w.f.Close()
}
