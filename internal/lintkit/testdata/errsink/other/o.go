// Fixture: errsink scopes to the durability packages and commands; other
// library packages are free to drop Close errors on read-only handles.
package other

import "os"

func Read(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close() // ok: not a durability package
	buf := make([]byte, 16)
	n, err := f.Read(buf)
	return buf[:n], err
}
