// Fixture: errsink fires on discarded durability errors in store packages
// and accepts the checked, joined, and explicitly discarded forms.
package sirendb

import (
	"errors"
	"os"
)

func fdatasync(f *os.File) error { return f.Sync() }

type store struct{ f *os.File }

// notify returns nothing: a Close with no error result is not a sink.
type notifier struct{}

func (notifier) Close() {}

func bad(s *store) {
	s.f.Close()    // want "error from Close discarded"
	s.f.Sync()     // want "error from Sync discarded"
	fdatasync(s.f) // want "error from fdatasync discarded"
}

func badDefer(s *store) {
	defer s.f.Close() // want "error from Close discarded by defer"
}

func good(s *store) error {
	if err := s.f.Sync(); err != nil {
		return err
	}
	return s.f.Close() // ok: returned
}

func goodJoin(s *store) (err error) {
	defer func() { err = errors.Join(err, s.f.Close()) }() // ok: joined into the return
	return fdatasync(s.f)
}

func goodExplicit(s *store, failed error) error {
	if failed != nil {
		_ = s.f.Close() // ok: visibly deliberate discard on an already-failing path
		return failed
	}
	return s.f.Close()
}

func goodNoError() {
	var n notifier
	n.Close() // ok: no error result to drop
}
