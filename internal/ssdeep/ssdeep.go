// Package ssdeep implements context-triggered piecewise hashing (CTPH) —
// the fuzzy-hash algorithm introduced by Kornblum (2006) and popularised by
// the ssdeep tool / libfuzzy, which the SIREN framework uses to identify and
// recognise HPC application executables.
//
// A fuzzy hash ("digest") has the form
//
//	blocksize:signature1:signature2
//
// where signature1 is produced with trigger block size b and signature2 with
// 2b. A rolling hash over a 7-byte window decides chunk boundaries; each
// chunk is summarised by one base64 character derived from an FNV-style
// piecewise hash. Because boundaries depend on content, inserting or
// deleting bytes only perturbs the digest locally, so similar files yield
// similar digests. Compare maps digest similarity to a score in [0, 100]
// (0 = no similarity, 100 = effectively identical).
//
// The implementation follows the reference libfuzzy semantics: block-size
// doubling/halving, 64/32-character signature caps, run-length clamping of
// repeated characters before comparison, a 7-byte common-substring gate, and
// the reference weighted edit distance for scoring. The SIREN paper describes
// the comparison in terms of the Damerau–Levenshtein distance; both backends
// (plus plain Levenshtein) are available via CompareWith for the ablation
// study.
package ssdeep

import (
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"siren/internal/editdist"
)

const (
	// rollingWindow is the width of the rolling-hash window in bytes and
	// also the minimum common-substring length required for a nonzero
	// comparison score.
	rollingWindow = 7
	// blockMin is the smallest trigger block size.
	blockMin = 3
	// spamsumLength is the maximum length of the first signature; the
	// second signature is capped at half of it.
	spamsumLength = 64

	hashPrime = 0x01000193
	hashInit  = 0x28021967

	base64Chars = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/"
)

// MaxInputSize bounds Hash inputs, mirroring libfuzzy's SSDEEP_MAX_FILE_SIZE
// guard (the block-size ladder tops out and digests stop being meaningful).
const MaxInputSize = 192 << 30 // effectively unbounded for our workloads

// ErrMalformedDigest is returned by ParseDigest and Compare when a digest
// string does not have the blocksize:sig1:sig2 shape.
var ErrMalformedDigest = errors.New("ssdeep: malformed digest")

// Digest is a parsed fuzzy hash.
type Digest struct {
	BlockSize uint32
	Sig1      string // produced with trigger block size BlockSize, ≤ 64 chars
	Sig2      string // produced with trigger block size 2*BlockSize, ≤ 32 chars
}

// String renders the digest in the canonical blocksize:sig1:sig2 form.
func (d Digest) String() string {
	return strconv.FormatUint(uint64(d.BlockSize), 10) + ":" + d.Sig1 + ":" + d.Sig2
}

// ParseDigest splits a digest string into its parts. A trailing
// ",filename" component (as emitted by the ssdeep CLI) is tolerated and
// ignored.
func ParseDigest(s string) (Digest, error) {
	if i := strings.IndexByte(s, ','); i >= 0 {
		s = s[:i]
	}
	first := strings.IndexByte(s, ':')
	if first < 0 {
		return Digest{}, fmt.Errorf("%w: %q lacks ':'", ErrMalformedDigest, s)
	}
	rest := s[first+1:]
	second := strings.IndexByte(rest, ':')
	if second < 0 {
		return Digest{}, fmt.Errorf("%w: %q lacks second ':'", ErrMalformedDigest, s)
	}
	bs, err := strconv.ParseUint(s[:first], 10, 32)
	if err != nil || bs == 0 {
		return Digest{}, fmt.Errorf("%w: bad block size in %q", ErrMalformedDigest, s)
	}
	return Digest{
		BlockSize: uint32(bs),
		Sig1:      rest[:second],
		Sig2:      rest[second+1:],
	}, nil
}

// rollingState is the 7-byte rolling hash that triggers chunk boundaries.
// Its value depends only on the last rollingWindow bytes seen, so identical
// windows always produce identical trigger decisions — the property that
// re-synchronises digests after an insertion or deletion.
type rollingState struct {
	window [rollingWindow]byte
	h1     uint32 // sum of window bytes
	h2     uint32 // weighted sum (position-sensitive)
	h3     uint32 // shift/xor mix
	n      uint32 // total bytes consumed
}

func (rs *rollingState) roll(c byte) uint32 {
	rs.h2 -= rs.h1
	rs.h2 += rollingWindow * uint32(c)
	rs.h1 += uint32(c)
	rs.h1 -= uint32(rs.window[rs.n%rollingWindow])
	rs.window[rs.n%rollingWindow] = c
	rs.n++
	rs.h3 <<= 5
	rs.h3 ^= uint32(c)
	return rs.h1 + rs.h2 + rs.h3
}

func (rs *rollingState) sum() uint32 { return rs.h1 + rs.h2 + rs.h3 }

// sumHash is the FNV-style piecewise hash accumulated within a chunk.
func sumHash(c byte, h uint32) uint32 { return (h * hashPrime) ^ uint32(c) }

// Hash computes the fuzzy hash of data and returns it in canonical string
// form. Hashing is deterministic and never fails for inputs within
// MaxInputSize.
func Hash(data []byte) (string, error) {
	d, err := HashDigest(data)
	if err != nil {
		return "", err
	}
	return d.String(), nil
}

// HashString is Hash for string inputs.
func HashString(s string) (string, error) { return Hash([]byte(s)) }

// HashReader reads r to EOF and hashes the contents. CTPH needs the full
// input up front because the initial block-size guess may be halved after a
// first pass produces a too-short signature.
func HashReader(r io.Reader) (string, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return "", fmt.Errorf("ssdeep: reading input: %w", err)
	}
	return Hash(data)
}

// HashDigest computes the fuzzy hash of data in parsed form.
func HashDigest(data []byte) (Digest, error) {
	if int64(len(data)) > MaxInputSize {
		return Digest{}, fmt.Errorf("ssdeep: input of %d bytes exceeds maximum", len(data))
	}
	// Initial block-size guess: the smallest power-of-two multiple of
	// blockMin such that the expected signature fits in spamsumLength.
	bs := uint32(blockMin)
	for uint64(bs)*spamsumLength < uint64(len(data)) {
		bs *= 2
	}
	for {
		sig1, sig2 := digestOnce(data, bs)
		// If the first signature came out shorter than half the cap the
		// block size was too coarse; halve and retry (reference behaviour).
		if bs > blockMin && len(sig1) < spamsumLength/2 {
			bs /= 2
			continue
		}
		return Digest{BlockSize: bs, Sig1: sig1, Sig2: sig2}, nil
	}
}

// digestOnce runs a single CTPH pass with trigger block size bs, returning
// the two signatures.
func digestOnce(data []byte, bs uint32) (string, string) {
	var sig1 [spamsumLength]byte
	var sig2 [spamsumLength / 2]byte
	j, k := 0, 0
	h1, h2 := uint32(hashInit), uint32(hashInit)
	var roll rollingState
	var rh uint32
	bs2 := bs * 2
	for _, c := range data {
		h1 = sumHash(c, h1)
		h2 = sumHash(c, h2)
		rh = roll.roll(c)
		if rh%bs == bs-1 {
			sig1[j] = base64Chars[h1%64]
			if j < spamsumLength-1 {
				// Keep the final slot writable so the very last chunk can
				// overwrite it; matches reference behaviour for inputs that
				// trigger more than spamsumLength boundaries.
				h1 = hashInit
				j++
			}
			if rh%bs2 == bs2-1 {
				sig2[k] = base64Chars[h2%64]
				if k < spamsumLength/2-1 {
					h2 = hashInit
					k++
				}
			}
		}
	}
	if roll.sum() != 0 {
		sig1[j] = base64Chars[h1%64]
		j++
		sig2[k] = base64Chars[h2%64]
		k++
	}
	return string(sig1[:j]), string(sig2[:k])
}

// Backend selects the edit-distance used to score signature similarity.
type Backend int

const (
	// BackendWeighted is the reference libfuzzy distance: insertions and
	// deletions cost 1, substitutions cost 2. This is the default.
	BackendWeighted Backend = iota
	// BackendDamerau is the Damerau–Levenshtein (OSA) distance named by the
	// SIREN paper: unit-cost insert/delete/substitute/adjacent-transpose.
	BackendDamerau
	// BackendLevenshtein is the plain unit-cost Levenshtein distance.
	BackendLevenshtein
)

// String names the backend for reports.
func (b Backend) String() string {
	switch b {
	case BackendWeighted:
		return "weighted"
	case BackendDamerau:
		return "damerau-levenshtein"
	case BackendLevenshtein:
		return "levenshtein"
	default:
		return fmt.Sprintf("Backend(%d)", int(b))
	}
}

// ParseBackend maps a backend name to its Backend — the shared grammar of
// the siren-hash -backend flag and the serve-tier identify API. The empty
// string selects the default (weighted) backend.
func ParseBackend(name string) (Backend, error) {
	switch name {
	case "", "weighted":
		return BackendWeighted, nil
	case "damerau", "damerau-levenshtein":
		return BackendDamerau, nil
	case "levenshtein":
		return BackendLevenshtein, nil
	}
	return BackendWeighted, fmt.Errorf("unknown backend %q (want weighted|damerau|levenshtein)", name)
}

func (b Backend) distance(s1, s2 string) int {
	switch b {
	case BackendDamerau:
		return editdist.DamerauLevenshtein(s1, s2)
	case BackendLevenshtein:
		return editdist.Levenshtein(s1, s2)
	default:
		return editdist.Weighted(s1, s2)
	}
}

// Compare scores the similarity of two digests on a 0–100 scale using the
// reference weighted edit distance. 100 means effectively identical, 0 means
// no measurable similarity. An error is returned only for malformed digests.
func Compare(d1, d2 string) (int, error) {
	return CompareWith(d1, d2, BackendWeighted)
}

// CompareWith is Compare with an explicit scoring backend.
func CompareWith(d1, d2 string, backend Backend) (int, error) {
	p1, err := ParseDigest(d1)
	if err != nil {
		return 0, err
	}
	p2, err := ParseDigest(d2)
	if err != nil {
		return 0, err
	}
	return CompareDigests(p1, p2, backend), nil
}

// CompareDigests scores two parsed digests. Block sizes must be equal or one
// must be double the other; otherwise the inputs were hashed at incomparable
// granularities and the score is 0.
//
// The comparison first clamps runs of repeated characters in each signature
// (eliminateSequences): long runs carry almost no information (a run arises
// from a pathological input pattern) and would otherwise dominate the edit
// distance. ComparePrepared is the same computation over digests with the
// clamp already applied.
func CompareDigests(p1, p2 Digest, backend Backend) int {
	return ComparePrepared(PrepareDigest(p1), PrepareDigest(p2), backend)
}

// scoreStrings maps the edit distance between two same-block-size signatures
// onto 0–100, with the reference small-block-size cap that prevents short
// digests of tiny files from overstating similarity.
func scoreStrings(s1, s2 string, bs uint32, backend Backend) int {
	if len(s1) > spamsumLength || len(s2) > spamsumLength {
		return 0
	}
	if !editdist.HasCommonSubstring(s1, s2, rollingWindow) {
		return 0
	}
	score := backend.distance(s1, s2)
	// Rescale: distance relative to combined length, onto 0..64, then 0..100.
	score = score * spamsumLength / (len(s1) + len(s2))
	score = 100 * score / 64
	if score >= 100 {
		return 0
	}
	score = 100 - score
	// For small block sizes, cap the score so that matches between short
	// signatures cannot claim near-certainty.
	if bs >= (99+rollingWindow)/rollingWindow*blockMin {
		return score
	}
	capScore := int(bs) / blockMin * min(len(s1), len(s2))
	if score > capScore {
		return capScore
	}
	return score
}

// eliminateSequences truncates runs of more than three identical characters
// to exactly three, per the reference comparison pre-pass. The input is
// returned unchanged (no copy) when it contains no such run — the common
// case for real digests.
func eliminateSequences(s string) string {
	i := 3
	for ; i < len(s); i++ {
		if s[i] == s[i-1] && s[i] == s[i-2] && s[i] == s[i-3] {
			break
		}
	}
	if i >= len(s) {
		return s
	}
	out := make([]byte, i, len(s))
	copy(out, s)
	for ; i < len(s); i++ {
		if s[i] == s[i-1] && s[i] == s[i-2] && s[i] == s[i-3] {
			continue
		}
		out = append(out, s[i])
	}
	return string(out)
}
