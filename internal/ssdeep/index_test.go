// Tests of the shared candidate-pruning engine: prepared digests must score
// exactly as parsed ones, and Index.Candidates must return a superset of
// every entry scoring nonzero — the zero-score pruning guarantee both
// Matcher and analysis.FingerprintIndex stand on.
package ssdeep

import (
	"fmt"
	"math/rand"
	"slices"
	"strings"
	"testing"
)

// randomDigestString synthesizes a parseable digest: block size from a
// spread of real and adversarial values, signatures over the base64
// alphabet, with occasional runs (to exercise the clamp) and occasional
// short or empty signatures.
func randomDigestString(rng *rand.Rand) string {
	blockSizes := []uint32{3, 6, 48, 96, 192, 384, 768, 1536, 3072,
		5,                                                     // odd, never produced by Hash: parseable nonetheless
		1 << 31, 1<<31 + 3, 1<<31 + 96, 2<<30 - 1, 4294967295} // wrap-around territory
	bs := blockSizes[rng.Intn(len(blockSizes))]
	sig := func(maxLen int) string {
		n := rng.Intn(maxLen + 1)
		var b strings.Builder
		for b.Len() < n {
			c := base64Chars[rng.Intn(64)]
			run := 1
			if rng.Intn(8) == 0 { // sprinkle runs to hit eliminateSequences
				run = 2 + rng.Intn(6)
			}
			for r := 0; r < run && b.Len() < n; r++ {
				b.WriteByte(c)
			}
		}
		return b.String()
	}
	return fmt.Sprintf("%d:%s:%s", bs, sig(spamsumLength), sig(spamsumLength/2))
}

// relatedDigests builds a family of digests sharing signature material, so
// gram postings actually collide: a base plus mutated/truncated variants at
// the same, half, and double block size.
func relatedDigests(rng *rand.Rand, n int) []string {
	base1 := make([]byte, spamsumLength)
	base2 := make([]byte, spamsumLength/2)
	for i := range base1 {
		base1[i] = base64Chars[rng.Intn(64)]
	}
	for i := range base2 {
		base2[i] = base64Chars[rng.Intn(64)]
	}
	bs := uint32(96 * (1 << rng.Intn(3)))
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		s1 := append([]byte(nil), base1...)
		s2 := append([]byte(nil), base2...)
		for m := rng.Intn(6); m >= 0; m-- {
			s1[rng.Intn(len(s1))] = base64Chars[rng.Intn(64)]
		}
		for m := rng.Intn(3); m >= 0; m-- {
			s2[rng.Intn(len(s2))] = base64Chars[rng.Intn(64)]
		}
		b := bs
		switch rng.Intn(4) {
		case 0:
			b = bs * 2
		case 1:
			b = bs / 2
		}
		out = append(out, fmt.Sprintf("%d:%s:%s", b, s1[:1+rng.Intn(len(s1))], s2[:1+rng.Intn(len(s2))]))
	}
	return out
}

func TestComparePreparedMatchesCompareDigests(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	pop := relatedDigests(rng, 60)
	for i := 0; i < 120; i++ {
		pop = append(pop, randomDigestString(rng))
	}
	// Identical short-signature digests: the score-100 shortcut must fire
	// without any shared 7-gram.
	pop = append(pop, "3:ab:c", "3:ab:c", "3::", "96:abc:z")
	backends := []Backend{BackendWeighted, BackendDamerau, BackendLevenshtein}
	for i := range pop {
		for j := range pop {
			d1, err1 := ParseDigest(pop[i])
			d2, err2 := ParseDigest(pop[j])
			if err1 != nil || err2 != nil {
				t.Fatalf("synthesized unparseable digest: %v %v", err1, err2)
			}
			p1, p2 := PrepareDigest(d1), PrepareDigest(d2)
			for _, b := range backends {
				want := CompareDigests(d1, d2, b)
				if got := ComparePrepared(p1, p2, b); got != want {
					t.Fatalf("ComparePrepared(%q, %q, %v) = %d, CompareDigests = %d",
						pop[i], pop[j], b, got, want)
				}
			}
		}
	}
}

func TestAppendGrams(t *testing.T) {
	if g := AppendGrams(nil, "abcdef"); len(g) != 0 {
		t.Errorf("grams of 6-byte string = %v, want none", g)
	}
	g := AppendGrams(nil, "abcdefgh")
	if len(g) != 2 {
		t.Fatalf("grams of 8-byte string = %d, want 2", len(g))
	}
	pack := func(s string) uint64 {
		var v uint64
		for i := 0; i < len(s); i++ {
			v = v<<8 | uint64(s[i])
		}
		return v
	}
	if g[0] != pack("abcdefg") || g[1] != pack("bcdefgh") {
		t.Errorf("grams = %x, want packed windows", g)
	}
	// Appending reuses dst.
	g2 := AppendGrams(g[:0], "abcdefg")
	if len(g2) != 1 || g2[0] != pack("abcdefg") {
		t.Errorf("reused dst grams = %x", g2)
	}
}

// TestIndexCandidatesCoverNonzeroScores is the pruning-soundness property:
// for a mixed population (related families, random digests, short and
// adversarial block sizes) and arbitrary queries, every entry with a nonzero
// ComparePrepared score must appear in Candidates' output.
func TestIndexCandidatesCoverNonzeroScores(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var pop []string
	pop = append(pop, relatedDigests(rng, 120)...)
	for i := 0; i < 250; i++ {
		pop = append(pop, randomDigestString(rng))
	}
	pop = append(pop, "3:ab:c", "3:ab:c", "3::", "6:abc:ab",
		// Wrap-around pair: (3 + 2³¹) * 2 == 6 in uint32 arithmetic, so a
		// query with block size 6 must probe this bucket too.
		fmt.Sprintf("%d:%s:%s", uint32(3)+1<<31, "AAAABBBBCCCCDDDD", "kkkkllll"),
	)

	ix := NewIndex()
	prepared := make([]PreparedDigest, len(pop))
	for i, d := range pop {
		p, err := ParsePrepared(d)
		if err != nil {
			t.Fatalf("ParsePrepared(%q): %v", d, err)
		}
		prepared[i] = p
		ix.Add(int32(i), p)
	}

	queries := append([]string{}, pop[:80]...) // self-queries
	queries = append(queries, relatedDigests(rng, 40)...)
	for i := 0; i < 80; i++ {
		queries = append(queries, randomDigestString(rng))
	}
	queries = append(queries, "3:ab:c", "6:abcdefghijklm:zz",
		"6:kkkkllllXXXX:AAAABBBB") // sig2 sharing grams with the wrap entry's sig1

	var set CandidateSet
	for _, qs := range queries {
		q, err := ParsePrepared(qs)
		if err != nil {
			t.Fatalf("ParsePrepared(%q): %v", qs, err)
		}
		set.Reset(len(pop))
		ix.Candidates(q, &set)
		if len(set.IDs) != len(uniqueIDs(set.IDs)) {
			t.Fatalf("Candidates(%q) returned duplicate ids: %v", qs, set.IDs)
		}
		cand := make(map[int32]bool, len(set.IDs))
		for _, id := range set.IDs {
			cand[id] = true
		}
		for i := range prepared {
			score := ComparePrepared(q, prepared[i], BackendWeighted)
			if score > 0 && !cand[int32(i)] {
				t.Fatalf("query %q scores %d against entry %d (%q) but the index did not return it",
					qs, score, i, pop[i])
			}
		}
	}
}

func uniqueIDs(ids []int32) []int32 {
	s := slices.Clone(ids)
	slices.Sort(s)
	return slices.Compact(s)
}

// TestCandidateSetEpochReuse pins the O(1)-clear contract: reusing one set
// across many queries never leaks candidates between queries, including
// across a mark-table regrow.
func TestCandidateSetEpochReuse(t *testing.T) {
	ix := NewIndex()
	p, err := ParsePrepared("96:AAAABBBBCCCCDDDDEEEE:AAAABBBBCC")
	if err != nil {
		t.Fatal(err)
	}
	ix.Add(0, p)
	var set CandidateSet
	for i := 0; i < 5; i++ {
		set.Reset(1)
		ix.Candidates(p, &set)
		if len(set.IDs) != 1 || set.IDs[0] != 0 {
			t.Fatalf("round %d: IDs = %v, want [0]", i, set.IDs)
		}
	}
	set.Reset(100) // regrow
	ix.Candidates(p, &set)
	if len(set.IDs) != 1 {
		t.Fatalf("after regrow: IDs = %v", set.IDs)
	}
	other, err := ParsePrepared("3:zz:")
	if err != nil {
		t.Fatal(err)
	}
	set.Reset(100)
	ix.Candidates(other, &set)
	if len(set.IDs) != 0 {
		t.Fatalf("unrelated query leaked candidates: %v", set.IDs)
	}
}

// TestMatcherMatchesExhaustive pins that the rebased Matcher returns exactly
// the entries a brute-force scan over all registered digests would, for a
// population spanning comparable and incomparable block sizes.
func TestMatcherMatchesExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	m := NewMatcher(BackendWeighted)
	var pop []string
	pop = append(pop, relatedDigests(rng, 80)...)
	for i := 0; i < 120; i++ {
		pop = append(pop, randomDigestString(rng))
	}
	for i, d := range pop {
		if err := m.Add(fmt.Sprintf("e%03d", i), d); err != nil {
			t.Fatalf("Add(%q): %v", d, err)
		}
	}
	queries := append([]string{}, pop[:30]...)
	queries = append(queries, relatedDigests(rng, 10)...)
	for _, minScore := range []int{0, 1, 40, 100} {
		for _, qs := range queries {
			got, err := m.Matches(qs, minScore)
			if err != nil {
				t.Fatal(err)
			}
			q, _ := ParsePrepared(qs)
			var want []Match
			for i, d := range pop {
				p, _ := ParsePrepared(d)
				if score := ComparePrepared(q, p, BackendWeighted); score >= max(minScore, 1) {
					want = append(want, Match{Label: fmt.Sprintf("e%03d", i), Digest: d, Score: score})
				}
			}
			slices.SortFunc(want, func(a, b Match) int {
				switch {
				case a.Score != b.Score:
					if a.Score > b.Score {
						return -1
					}
					return 1
				case a.Label != b.Label:
					return strings.Compare(a.Label, b.Label)
				}
				return strings.Compare(a.Digest, b.Digest)
			})
			if !slices.Equal(got, want) {
				t.Fatalf("Matches(%q, %d):\n got  %v\n want %v", qs, minScore, got, want)
			}
		}
	}
}
