// Sub-linear candidate pruning over fuzzy-hash digests — the shared search
// engine behind Matcher and analysis.FingerprintIndex.
//
// The engine exploits two structural preconditions of the ssdeep score
// (CompareDigests): a pair of digests can score nonzero only when
//
//  1. their block sizes are comparable — equal, or one double the other
//     (in the comparison's uint32 arithmetic), and
//  2. either both run-clamped signatures are equal at equal block size
//     (the score-100 shortcut), or the pair of signatures actually compared
//     shares a contiguous substring of at least GramSize (7) bytes — the
//     HasCommonSubstring gate inside scoreStrings.
//
// Entries are therefore bucketed by block size, and within a bucket every
// GramSize-byte window ("gram") of each clamped signature is posted in an
// inverted index. A query unions the posting lists of its own grams across
// the comparable buckets — probing Sig1 grams against the signature slot its
// Sig1 would be compared with, and likewise Sig2 — plus an exact-signature
// table for the equality shortcut (which fires even for signatures shorter
// than a gram). Everything the probe does not return provably scores zero,
// so scoring only touches returned candidates and results stay byte-identical
// to an exhaustive scan.
package ssdeep

// GramSize is the pruning n-gram width: the rolling-hash window length,
// which is also the minimum common-substring length scoreStrings requires
// for a nonzero score.
const GramSize = rollingWindow

const gramMask = 1<<(8*GramSize) - 1

// PreparedDigest is a parsed digest in comparison-ready form: its signatures
// have the run-length clamp (eliminateSequences) already applied, so
// repeated comparisons and gram extraction skip that pre-pass.
type PreparedDigest struct {
	BlockSize uint32
	S1, S2    string // clamped signatures
}

// PrepareDigest clamps a parsed digest's signatures for comparison.
func PrepareDigest(d Digest) PreparedDigest {
	return PreparedDigest{
		BlockSize: d.BlockSize,
		S1:        eliminateSequences(d.Sig1),
		S2:        eliminateSequences(d.Sig2),
	}
}

// ParsePrepared parses a digest string straight into prepared form.
func ParsePrepared(s string) (PreparedDigest, error) {
	d, err := ParseDigest(s)
	if err != nil {
		return PreparedDigest{}, err
	}
	return PrepareDigest(d), nil
}

// ComparePrepared scores two prepared digests, identically to CompareDigests
// on the corresponding parsed digests.
func ComparePrepared(p1, p2 PreparedDigest, backend Backend) int {
	bs1, bs2 := p1.BlockSize, p2.BlockSize
	if bs1 != bs2 && bs1 != bs2*2 && bs2 != bs1*2 {
		return 0
	}
	if bs1 == bs2 && p1.S1 == p2.S1 && p1.S2 == p2.S2 {
		return 100
	}
	switch {
	case bs1 == bs2:
		sc1 := scoreStrings(p1.S1, p2.S1, bs1, backend)
		sc2 := scoreStrings(p1.S2, p2.S2, bs1*2, backend)
		return max(sc1, sc2)
	case bs1 == bs2*2:
		return scoreStrings(p1.S1, p2.S2, bs1, backend)
	default: // bs2 == bs1*2
		return scoreStrings(p1.S2, p2.S1, bs2, backend)
	}
}

// AppendGrams appends every GramSize-byte window of s, packed big-endian
// into a uint64, to dst and returns the extended slice. Strings shorter than
// GramSize contribute nothing.
func AppendGrams(dst []uint64, s string) []uint64 {
	if len(s) < GramSize {
		return dst
	}
	var g uint64
	for i := 0; i < GramSize-1; i++ {
		g = g<<8 | uint64(s[i])
	}
	for i := GramSize - 1; i < len(s); i++ {
		g = (g<<8 | uint64(s[i])) & gramMask
		dst = append(dst, g)
	}
	return dst
}

// CandidateSet collects the deduplicated candidate ids of one query across
// any number of Index probes. It is reusable scratch: Reset starts a new
// query without reallocating (an epoch counter makes clearing O(1)), so a
// pooled CandidateSet gives allocation-free candidate collection in steady
// state. A CandidateSet must not be used concurrently.
type CandidateSet struct {
	// IDs are the candidates collected since the last Reset, in probe order
	// (not sorted), each id at most once.
	IDs []int32

	marks []uint32
	epoch uint32
	grams []uint64
}

// Reset prepares the set for a query over an id space of size n
// (ids 0..n-1).
func (cs *CandidateSet) Reset(n int) {
	if cap(cs.marks) < n {
		cs.marks = make([]uint32, n)
		cs.epoch = 0
	}
	cs.marks = cs.marks[:n]
	cs.epoch++
	if cs.epoch == 0 { // epoch wrapped: stale marks could alias, clear once
		clear(cs.marks)
		cs.epoch = 1
	}
	cs.IDs = cs.IDs[:0]
}

func (cs *CandidateSet) add(id int32) {
	if cs.marks[id] != cs.epoch {
		cs.marks[id] = cs.epoch
		cs.IDs = append(cs.IDs, id)
	}
}

// Index is the candidate-pruning index over one digest population. Entries
// are identified by caller-assigned ids (dense, starting at 0 — they size
// the CandidateSet mark table); Add must be called with nondecreasing ids.
// An Index is immutable once populated and safe for concurrent Candidates
// calls; Add must not race with Candidates.
type Index struct {
	buckets map[uint32]*indexBucket
	exact   map[exactKey][]int32
}

// indexBucket holds one block size's inverted gram postings, one map per
// signature slot.
type indexBucket struct {
	s1 map[uint64][]int32 // grams of clamped Sig1 → ids
	s2 map[uint64][]int32 // grams of clamped Sig2 → ids
}

type exactKey struct {
	bs     uint32
	s1, s2 string
}

// NewIndex returns an empty index.
func NewIndex() *Index {
	return &Index{
		buckets: make(map[uint32]*indexBucket),
		exact:   make(map[exactKey][]int32),
	}
}

// Add posts a prepared digest under id. Ids must be nondecreasing across
// calls (posting lists stay sorted and deduplicated by construction).
func (ix *Index) Add(id int32, p PreparedDigest) {
	b := ix.buckets[p.BlockSize]
	if b == nil {
		b = &indexBucket{s1: make(map[uint64][]int32), s2: make(map[uint64][]int32)}
		ix.buckets[p.BlockSize] = b
	}
	addGrams(b.s1, id, p.S1)
	addGrams(b.s2, id, p.S2)
	k := exactKey{bs: p.BlockSize, s1: p.S1, s2: p.S2}
	ix.exact[k] = append(ix.exact[k], id)
}

func addGrams(m map[uint64][]int32, id int32, s string) {
	if len(s) < GramSize {
		return
	}
	var g uint64
	for i := 0; i < GramSize-1; i++ {
		g = g<<8 | uint64(s[i])
	}
	for i := GramSize - 1; i < len(s); i++ {
		g = (g<<8 | uint64(s[i])) & gramMask
		if l := m[g]; len(l) == 0 || l[len(l)-1] != id {
			m[g] = append(m[g], id)
		}
	}
}

// Candidates adds to set every entry that could score nonzero against q:
// the exact-signature matches at q's block size, plus every entry of a
// comparable bucket sharing at least one gram with the signature q would be
// compared against. The comparability arithmetic mirrors ComparePrepared's
// uint32 semantics exactly, including wrap-around doubles.
func (ix *Index) Candidates(q PreparedDigest, set *CandidateSet) {
	for _, id := range ix.exact[exactKey{bs: q.BlockSize, s1: q.S1, s2: q.S2}] {
		set.add(id)
	}
	// Query Sig1 is compared against Sig1 of equal-block-size entries and
	// against Sig2 of entries whose block size doubles to the query's.
	grams := AppendGrams(set.grams[:0], q.S1)
	if b := ix.buckets[q.BlockSize]; b != nil {
		probeGrams(b.s1, grams, set)
	}
	if q.BlockSize%2 == 0 {
		// e.BlockSize*2 == q.BlockSize in uint32 arithmetic has two
		// solutions: q/2 and q/2 + 2³¹ (the doubling wraps).
		for _, hb := range [2]uint32{q.BlockSize / 2, q.BlockSize/2 + 1<<31} {
			if b := ix.buckets[hb]; b != nil {
				probeGrams(b.s2, grams, set)
			}
		}
	}
	// Query Sig2 is compared against Sig2 at equal block size and against
	// Sig1 of double-block-size entries (uint32 wrap included).
	grams = AppendGrams(grams[:0], q.S2)
	if b := ix.buckets[q.BlockSize]; b != nil {
		probeGrams(b.s2, grams, set)
	}
	if b := ix.buckets[q.BlockSize*2]; b != nil {
		probeGrams(b.s1, grams, set)
	}
	set.grams = grams
}

func probeGrams(m map[uint64][]int32, grams []uint64, set *CandidateSet) {
	if len(m) == 0 {
		return
	}
	for _, g := range grams {
		for _, id := range m[g] {
			set.add(id)
		}
	}
}
