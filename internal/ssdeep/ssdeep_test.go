package ssdeep

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomBlob produces pseudo-random but structured data: runs of repeated
// tokens so that fuzzy hashing has structure to latch onto, the way object
// code and text do (uniform random data defeats any similarity digest).
func randomBlob(rng *rand.Rand, n int) []byte {
	words := []string{"mov", "call", "ret", "push", "pop", "xor", "lea", "jmp",
		"climate", "solver", "matrix", "kernel", "flux", "grid", "halo"}
	var buf bytes.Buffer
	for buf.Len() < n {
		w := words[rng.Intn(len(words))]
		for r := rng.Intn(4); r >= 0; r-- {
			buf.WriteString(w)
			buf.WriteByte(byte(rng.Intn(256)))
		}
	}
	return buf.Bytes()[:n]
}

func mustHash(t *testing.T, data []byte) string {
	t.Helper()
	h, err := Hash(data)
	if err != nil {
		t.Fatalf("Hash: %v", err)
	}
	return h
}

func mustCompare(t *testing.T, a, b string) int {
	t.Helper()
	s, err := Compare(a, b)
	if err != nil {
		t.Fatalf("Compare(%q, %q): %v", a, b, err)
	}
	return s
}

func TestHashEmpty(t *testing.T) {
	h := mustHash(t, nil)
	if h != "3::" {
		t.Errorf("Hash(empty) = %q, want 3::", h)
	}
}

func TestHashDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	data := randomBlob(rng, 16384)
	h1 := mustHash(t, data)
	h2 := mustHash(t, data)
	if h1 != h2 {
		t.Errorf("hash not deterministic: %q vs %q", h1, h2)
	}
}

func TestHashFormat(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{1, 10, 100, 1000, 10000, 100000} {
		h := mustHash(t, randomBlob(rng, n))
		d, err := ParseDigest(h)
		if err != nil {
			t.Fatalf("ParseDigest(%q): %v", h, err)
		}
		if d.BlockSize < blockMin {
			t.Errorf("n=%d: block size %d < %d", n, d.BlockSize, blockMin)
		}
		if len(d.Sig1) > spamsumLength {
			t.Errorf("n=%d: sig1 length %d > %d", n, len(d.Sig1), spamsumLength)
		}
		if len(d.Sig2) > spamsumLength/2 {
			t.Errorf("n=%d: sig2 length %d > %d", n, len(d.Sig2), spamsumLength/2)
		}
		if d.String() != h {
			t.Errorf("roundtrip mismatch: %q -> %q", h, d.String())
		}
	}
}

func TestBlockSizeGrowsWithInput(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	small, err := HashDigest(randomBlob(rng, 100))
	if err != nil {
		t.Fatal(err)
	}
	large, err := HashDigest(randomBlob(rng, 1<<20))
	if err != nil {
		t.Fatal(err)
	}
	if small.BlockSize >= large.BlockSize {
		t.Errorf("block size should grow: %d (100B) vs %d (1MiB)", small.BlockSize, large.BlockSize)
	}
}

func TestSelfCompareIs100(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{64, 512, 4096, 65536} {
		h := mustHash(t, randomBlob(rng, n))
		if s := mustCompare(t, h, h); s != 100 {
			t.Errorf("n=%d: self-compare = %d, want 100", n, s)
		}
	}
}

func TestSimilarInputsScoreHigh(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	data := randomBlob(rng, 32768)
	mutated := append([]byte(nil), data...)
	// Flip a handful of bytes: a "small code change".
	for i := 0; i < 8; i++ {
		mutated[rng.Intn(len(mutated))] ^= 0xFF
	}
	h1 := mustHash(t, data)
	h2 := mustHash(t, mutated)
	if s := mustCompare(t, h1, h2); s < 60 {
		t.Errorf("similar inputs scored %d, want >= 60 (h1=%s h2=%s)", s, h1, h2)
	}
}

func TestInsertionPreservesSimilarity(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	data := randomBlob(rng, 32768)
	// Insert a 100-byte block in the middle: cryptographic hashes change
	// completely, fuzzy hashes must still match strongly.
	ins := randomBlob(rng, 100)
	mutated := append(append(append([]byte(nil), data[:16000]...), ins...), data[16000:]...)
	h1 := mustHash(t, data)
	h2 := mustHash(t, mutated)
	if s := mustCompare(t, h1, h2); s < 50 {
		t.Errorf("insertion dropped score to %d, want >= 50", s)
	}
}

func TestUnrelatedInputsScoreLow(t *testing.T) {
	rngA := rand.New(rand.NewSource(7))
	rngB := rand.New(rand.NewSource(701))
	a := make([]byte, 32768)
	b := make([]byte, 32768)
	rngA.Read(a)
	rngB.Read(b)
	h1 := mustHash(t, a)
	h2 := mustHash(t, b)
	if s := mustCompare(t, h1, h2); s > 30 {
		t.Errorf("unrelated uniform-random inputs scored %d, want <= 30", s)
	}
}

func TestCompareSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 50; i++ {
		a := randomBlob(rng, 1000+rng.Intn(30000))
		b := append([]byte(nil), a...)
		for j := 0; j < rng.Intn(50); j++ {
			b[rng.Intn(len(b))] ^= byte(1 + rng.Intn(255))
		}
		h1 := mustHash(t, a)
		h2 := mustHash(t, b)
		if mustCompare(t, h1, h2) != mustCompare(t, h2, h1) {
			t.Fatalf("asymmetric score for %s vs %s", h1, h2)
		}
	}
}

func TestCompareRange(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	digests := make([]string, 0, 20)
	for i := 0; i < 20; i++ {
		digests = append(digests, mustHash(t, randomBlob(rng, 100+rng.Intn(50000))))
	}
	for _, a := range digests {
		for _, b := range digests {
			s := mustCompare(t, a, b)
			if s < 0 || s > 100 {
				t.Fatalf("score %d out of range for %s vs %s", s, a, b)
			}
		}
	}
}

func TestIncomparableBlockSizesScoreZero(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	small := mustHash(t, randomBlob(rng, 200))  // block size 3 or 6
	huge := mustHash(t, randomBlob(rng, 4<<20)) // block size >> 12
	if s := mustCompare(t, small, huge); s != 0 {
		t.Errorf("incomparable block sizes scored %d, want 0", s)
	}
}

func TestMalformedDigests(t *testing.T) {
	bad := []string{"", "3", "3:abc", "x:abc:def", "0:a:b", "-3:a:b"}
	for _, s := range bad {
		if _, err := ParseDigest(s); err == nil {
			t.Errorf("ParseDigest(%q) should fail", s)
		}
		if _, err := Compare(s, "3:abc:def"); err == nil {
			t.Errorf("Compare(%q, ...) should fail", s)
		}
	}
	// Trailing filename is tolerated.
	if _, err := ParseDigest(`3:abc:def,"/usr/bin/bash"`); err != nil {
		t.Errorf("digest with filename suffix rejected: %v", err)
	}
}

func TestEliminateSequences(t *testing.T) {
	cases := []struct{ in, want string }{
		{"", ""},
		{"abc", "abc"},
		{"aaaa", "aaa"},
		{"aaaaaaab", "aaab"},
		{"abaaaab", "abaaab"},
		{"aabbccdd", "aabbccdd"},
		{"xxxxyyyyzzzz", "xxxyyyzzz"},
	}
	for _, c := range cases {
		if got := eliminateSequences(c.in); got != c.want {
			t.Errorf("eliminateSequences(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestRollingHashWindowProperty(t *testing.T) {
	// The rolling hash value must depend only on the last 7 bytes consumed.
	var a, b rollingState
	for _, c := range []byte("prefix-one-!") {
		a.roll(c)
	}
	for _, c := range []byte("completely different prefix material") {
		b.roll(c)
	}
	var last uint32
	for _, c := range []byte("1234567") {
		last = a.roll(c)
		b.roll(c)
	}
	if got := b.sum(); got != last {
		t.Errorf("rolling hash depends on more than the window: %d vs %d", got, last)
	}
}

func TestHashReader(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	data := randomBlob(rng, 10000)
	hr, err := HashReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if hd := mustHash(t, data); hr != hd {
		t.Errorf("HashReader %q != Hash %q", hr, hd)
	}
}

func TestBackends(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	data := randomBlob(rng, 32768)
	mutated := append([]byte(nil), data...)
	for i := 0; i < 20; i++ {
		mutated[rng.Intn(len(mutated))] ^= 0x55
	}
	h1 := mustHash(t, data)
	h2 := mustHash(t, mutated)
	for _, b := range []Backend{BackendWeighted, BackendDamerau, BackendLevenshtein} {
		s, err := CompareWith(h1, h2, b)
		if err != nil {
			t.Fatalf("%v: %v", b, err)
		}
		if s < 40 || s > 100 {
			t.Errorf("backend %v: score %d outside plausible band", b, s)
		}
		self, err := CompareWith(h1, h1, b)
		if err != nil || self != 100 {
			t.Errorf("backend %v: self-compare = %d (err %v), want 100", b, self, err)
		}
	}
}

func TestQuickCompareProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	f := func(seed int64, na, nb uint16) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomBlob(r, 200+int(na)%20000)
		b := randomBlob(r, 200+int(nb)%20000)
		ha, err1 := Hash(a)
		hb, err2 := Hash(b)
		if err1 != nil || err2 != nil {
			return false
		}
		s1, e1 := Compare(ha, hb)
		s2, e2 := Compare(hb, ha)
		if e1 != nil || e2 != nil {
			return false
		}
		return s1 == s2 && s1 >= 0 && s1 <= 100
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestMatcherRanksCloserVariantsHigher(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	base := randomBlob(rng, 40000)
	variant := func(nmut int) []byte {
		v := append([]byte(nil), base...)
		for i := 0; i < nmut; i++ {
			v[rng.Intn(len(v))] ^= byte(1 + rng.Intn(255))
		}
		return v
	}
	m := NewMatcher(BackendWeighted)
	h0 := mustHash(t, base)
	if err := m.Add("exact", h0); err != nil {
		t.Fatal(err)
	}
	hNear := mustHash(t, variant(10))
	if err := m.Add("near", hNear); err != nil {
		t.Fatal(err)
	}
	hFar := mustHash(t, variant(3000))
	if err := m.Add("far", hFar); err != nil {
		t.Fatal(err)
	}
	if err := m.Add("unrelated", mustHash(t, randomBlob(rand.New(rand.NewSource(999)), 40000))); err != nil {
		t.Fatal(err)
	}

	matches, err := m.Matches(h0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) < 2 {
		t.Fatalf("want at least 2 matches, got %d: %+v", len(matches), matches)
	}
	if matches[0].Label != "exact" || matches[0].Score != 100 {
		t.Errorf("best match = %+v, want exact/100", matches[0])
	}
	scoreOf := func(label string) int {
		for _, mt := range matches {
			if mt.Label == label {
				return mt.Score
			}
		}
		return 0
	}
	if scoreOf("near") <= scoreOf("far") {
		t.Errorf("near (%d) should outscore far (%d)", scoreOf("near"), scoreOf("far"))
	}

	best, ok, err := m.Best(h0)
	if err != nil || !ok || best.Label != "exact" {
		t.Errorf("Best = %+v ok=%v err=%v, want exact", best, ok, err)
	}
	if m.Len() != 4 {
		t.Errorf("Len = %d, want 4", m.Len())
	}
}

func TestMatcherRejectsMalformed(t *testing.T) {
	m := NewMatcher(BackendWeighted)
	if err := m.Add("x", "not-a-digest"); err == nil {
		t.Error("Add should reject malformed digest")
	}
	if _, err := m.Matches("not-a-digest", 0); err == nil {
		t.Error("Matches should reject malformed digest")
	}
}

func BenchmarkHash4K(b *testing.B)  { benchHash(b, 4<<10) }
func BenchmarkHash64K(b *testing.B) { benchHash(b, 64<<10) }
func BenchmarkHash1M(b *testing.B)  { benchHash(b, 1<<20) }
func BenchmarkHash16M(b *testing.B) { benchHash(b, 16<<20) }

func benchHash(b *testing.B, n int) {
	rng := rand.New(rand.NewSource(20))
	data := randomBlob(rng, n)
	b.SetBytes(int64(n))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Hash(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompare(b *testing.B) {
	rng := rand.New(rand.NewSource(21))
	data := randomBlob(rng, 64<<10)
	mut := append([]byte(nil), data...)
	for i := 0; i < 100; i++ {
		mut[rng.Intn(len(mut))] ^= 0xAA
	}
	h1, _ := Hash(data)
	h2, _ := Hash(mut)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compare(h1, h2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMatcher1000(b *testing.B) {
	rng := rand.New(rand.NewSource(22))
	m := NewMatcher(BackendWeighted)
	base := randomBlob(rng, 32<<10)
	for i := 0; i < 1000; i++ {
		v := append([]byte(nil), base...)
		for j := 0; j < i%500; j++ {
			v[rng.Intn(len(v))] ^= byte(i)
		}
		h, _ := Hash(v)
		if err := m.Add("v", h); err != nil {
			b.Fatal(err)
		}
	}
	q, _ := Hash(base)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Matches(q, 50); err != nil {
			b.Fatal(err)
		}
	}
}
