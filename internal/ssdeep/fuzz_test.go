package ssdeep

import "testing"

// FuzzParseDigest: ParseDigest must never panic, and any digest it accepts
// must render back (String) to a form that re-parses to the identical
// digest — the property the catalog relies on when it stores digests as
// strings and re-parses them at query time. Accepted digests must also be
// comparable against themselves without error.
func FuzzParseDigest(f *testing.F) {
	f.Add("3:abc:def")
	f.Add("3:ab:cd,somefile.bin")
	f.Add("12288:hVd7PBXPa:hV")
	f.Add("0:a:b")
	f.Add("4294967296:a:b") // block size overflows uint32
	f.Add(":missing:size")
	f.Add("3:colons:in:sig2:tail")
	f.Add("not a digest")
	f.Add("")
	f.Fuzz(func(t *testing.T, s string) {
		d, err := ParseDigest(s)
		if err != nil {
			return
		}
		if d.BlockSize == 0 {
			t.Fatalf("accepted digest %q with block size 0", s)
		}
		d2, err := ParseDigest(d.String())
		if err != nil {
			t.Fatalf("ParseDigest(%q).String() = %q does not re-parse: %v", s, d.String(), err)
		}
		if d2 != d {
			t.Fatalf("round-trip mismatch: %+v vs %+v", d, d2)
		}
		score, err := Compare(d.String(), d.String())
		if err != nil {
			t.Fatalf("self-compare of accepted digest %q failed: %v", d.String(), err)
		}
		if score < 0 || score > 100 {
			t.Fatalf("self-compare score %d outside [0, 100]", score)
		}
	})
}
