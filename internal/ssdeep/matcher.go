package ssdeep

import (
	"slices"
	"sync"
)

// Entry is a labelled digest registered with a Matcher.
type Entry struct {
	Label  string // free-form label, e.g. a software name
	Digest string // canonical digest string
	parsed PreparedDigest
}

// Match is one similarity-search result.
type Match struct {
	Label  string
	Digest string
	Score  int // 1–100
}

// Matcher is an in-memory similarity-search index over labelled fuzzy
// hashes: the structure SIREN's analysis layer uses to identify an unknown
// executable by ranking its digest against all known ones. A Matcher is safe
// for concurrent use.
//
// Matcher rides the shared Index engine: entries are bucketed by block size
// (only b/2, b, and 2b can score nonzero against a query with block size b)
// and gram-inverted within each bucket, so a query scores only the entries
// that could possibly match instead of the whole population.
type Matcher struct {
	mu      sync.RWMutex
	entries []Entry
	index   *Index
	backend Backend
}

// candidatePool recycles CandidateSet scratch across queries, package-wide:
// mark tables grow to the largest population queried and are then reused
// allocation-free.
var candidatePool = sync.Pool{New: func() any { return new(CandidateSet) }}

// NewMatcher returns an empty Matcher scoring with the given backend.
func NewMatcher(backend Backend) *Matcher {
	return &Matcher{index: NewIndex(), backend: backend}
}

// Len reports the number of registered entries.
func (m *Matcher) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.entries)
}

// Add registers a labelled digest. Malformed digests are rejected.
func (m *Matcher) Add(label, digest string) error {
	p, err := ParsePrepared(digest)
	if err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	id := int32(len(m.entries))
	m.entries = append(m.entries, Entry{Label: label, Digest: digest, parsed: p})
	m.index.Add(id, p)
	return nil
}

// Matches returns every entry scoring at least minScore against the query
// digest, sorted by descending score (ties broken by label, then digest, for
// determinism). A score of 0 means no measurable similarity, so zero-scoring
// entries are never returned: minScore below 1 is treated as 1.
func (m *Matcher) Matches(digest string, minScore int) ([]Match, error) {
	q, err := ParsePrepared(digest)
	if err != nil {
		return nil, err
	}
	minScore = max(minScore, 1)
	set := candidatePool.Get().(*CandidateSet)
	defer candidatePool.Put(set)

	m.mu.RLock()
	set.Reset(len(m.entries))
	m.index.Candidates(q, set)
	slices.Sort(set.IDs)
	var out []Match
	for _, id := range set.IDs {
		e := &m.entries[id]
		if score := ComparePrepared(q, e.parsed, m.backend); score >= minScore {
			out = append(out, Match{Label: e.Label, Digest: e.Digest, Score: score})
		}
	}
	m.mu.RUnlock()

	slices.SortFunc(out, func(a, b Match) int {
		switch {
		case a.Score != b.Score:
			if a.Score > b.Score {
				return -1
			}
			return 1
		case a.Label != b.Label:
			if a.Label < b.Label {
				return -1
			}
			return 1
		case a.Digest < b.Digest:
			return -1
		case a.Digest > b.Digest:
			return 1
		}
		return 0
	})
	return out, nil
}

// Best returns the highest-scoring match, or ok=false when nothing scores
// above zero.
func (m *Matcher) Best(digest string) (Match, bool, error) {
	ms, err := m.Matches(digest, 1)
	if err != nil || len(ms) == 0 {
		return Match{}, false, err
	}
	return ms[0], true, nil
}
