package ssdeep

import (
	"sort"
	"sync"
)

// Entry is a labelled digest registered with a Matcher.
type Entry struct {
	Label  string // free-form label, e.g. a software name
	Digest string // canonical digest string
	parsed Digest
}

// Match is one similarity-search result.
type Match struct {
	Label  string
	Digest string
	Score  int // 0–100
}

// Matcher is an in-memory similarity-search index over labelled fuzzy
// hashes: the structure SIREN's analysis layer uses to identify an unknown
// executable by ranking its digest against all known ones. A Matcher is safe
// for concurrent use.
//
// Candidate pruning uses the block-size comparability rule: a query digest
// with block size b can only score nonzero against entries with block size
// b/2, b, or 2b, so entries are bucketed by block size.
type Matcher struct {
	mu      sync.RWMutex
	byBlock map[uint32][]Entry
	backend Backend
	n       int
}

// NewMatcher returns an empty Matcher scoring with the given backend.
func NewMatcher(backend Backend) *Matcher {
	return &Matcher{byBlock: make(map[uint32][]Entry), backend: backend}
}

// Len reports the number of registered entries.
func (m *Matcher) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.n
}

// Add registers a labelled digest. Malformed digests are rejected.
func (m *Matcher) Add(label, digest string) error {
	p, err := ParseDigest(digest)
	if err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.byBlock[p.BlockSize] = append(m.byBlock[p.BlockSize], Entry{Label: label, Digest: digest, parsed: p})
	m.n++
	return nil
}

// Matches returns every entry scoring at least minScore against the query
// digest, sorted by descending score (ties broken by label for determinism).
func (m *Matcher) Matches(digest string, minScore int) ([]Match, error) {
	q, err := ParseDigest(digest)
	if err != nil {
		return nil, err
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	var out []Match
	for _, bs := range comparableBlockSizes(q.BlockSize) {
		for _, e := range m.byBlock[bs] {
			score := CompareDigests(q, e.parsed, m.backend)
			if score >= minScore {
				out = append(out, Match{Label: e.Label, Digest: e.Digest, Score: score})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		if out[i].Label != out[j].Label {
			return out[i].Label < out[j].Label
		}
		return out[i].Digest < out[j].Digest
	})
	return out, nil
}

// Best returns the highest-scoring match, or ok=false when nothing scores
// above zero.
func (m *Matcher) Best(digest string) (Match, bool, error) {
	ms, err := m.Matches(digest, 1)
	if err != nil || len(ms) == 0 {
		return Match{}, false, err
	}
	return ms[0], true, nil
}

func comparableBlockSizes(bs uint32) []uint32 {
	sizes := []uint32{bs, bs * 2}
	if bs/2 >= blockMin && bs%2 == 0 {
		sizes = append(sizes, bs/2)
	}
	return sizes
}
