// Package procfs models the pieces of a Linux system that SIREN's data
// collector reads: a file system holding executables and libraries with full
// stat metadata, a process table with PID allocation and exec() semantics,
// and /proc/<pid>/maps-style memory maps (both rendering and parsing).
//
// The real siren.so obtains the executable path from /proc/self/exe, process
// identity from getpid()/getppid()/getuid()/getgid(), file metadata from
// stat(2), and the memory map from /proc/self/maps. The simulation keeps
// those access paths intact so the collector code is identical in simulated
// and real-host modes.
package procfs

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// FileMeta mirrors the stat(2) fields SIREN records for executables.
type FileMeta struct {
	Inode uint64
	Size  int64
	Mode  uint32 // permission bits, e.g. 0o755
	UID   uint32 // owner
	GID   uint32
	Atime int64 // unix seconds
	Mtime int64
	Ctime int64
}

// File is one file in the simulated filesystem.
type File struct {
	Path string
	Data []byte
	Meta FileMeta
}

// FS is a flat, thread-safe simulated filesystem: path → file. Directories
// are implicit (any path prefix ending in '/').
type FS struct {
	mu        sync.RWMutex
	files     map[string]*File
	nextInode uint64
}

// NewFS returns an empty filesystem.
func NewFS() *FS {
	return &FS{files: make(map[string]*File), nextInode: 1000}
}

// ErrNotExist is returned for missing paths.
var ErrNotExist = errors.New("procfs: file does not exist")

// Install writes a file. If meta.Inode is zero a fresh inode is allocated;
// if meta.Size is zero it is set to len(data).
func (fs *FS) Install(path string, data []byte, meta FileMeta) *File {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if meta.Inode == 0 {
		fs.nextInode++
		meta.Inode = fs.nextInode
	}
	if meta.Size == 0 {
		meta.Size = int64(len(data))
	}
	if meta.Mode == 0 {
		meta.Mode = 0o755
	}
	f := &File{Path: path, Data: data, Meta: meta}
	fs.files[path] = f
	return f
}

// ReadFile returns the contents of path.
func (fs *FS) ReadFile(path string) ([]byte, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	f, ok := fs.files[path]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotExist, path)
	}
	return f.Data, nil
}

// Stat returns the metadata of path.
func (fs *FS) Stat(path string) (FileMeta, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	f, ok := fs.files[path]
	if !ok {
		return FileMeta{}, fmt.Errorf("%w: %s", ErrNotExist, path)
	}
	return f.Meta, nil
}

// Exists reports whether path is present.
func (fs *FS) Exists(path string) bool {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	_, ok := fs.files[path]
	return ok
}

// List returns all paths with the given prefix, sorted.
func (fs *FS) List(prefix string) []string {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	var out []string
	for p := range fs.files {
		if strings.HasPrefix(p, prefix) {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

// Len reports the number of installed files.
func (fs *FS) Len() int {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	return len(fs.files)
}

// Region is one line of /proc/<pid>/maps.
type Region struct {
	Start, End uint64
	Perms      string // "r-xp" etc.
	Offset     uint64
	Dev        string // "fd:00"
	Inode      uint64
	Path       string // mapped file, "[heap]", "[stack]", or ""
}

// RenderMaps produces the text form of /proc/<pid>/maps for the regions.
func RenderMaps(regions []Region) string {
	var sb strings.Builder
	for _, r := range regions {
		dev := r.Dev
		if dev == "" {
			dev = "00:00"
		}
		fmt.Fprintf(&sb, "%012x-%012x %s %08x %s %d", r.Start, r.End, r.Perms, r.Offset, dev, r.Inode)
		if r.Path != "" {
			sb.WriteString(strings.Repeat(" ", 20))
			sb.WriteString(r.Path)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// ParseMaps parses /proc/<pid>/maps text back into regions. Lines that do
// not match the maps grammar produce an error; empty input yields nil.
func ParseMaps(text string) ([]Region, error) {
	var out []Region
	for lineNo, line := range strings.Split(text, "\n") {
		if strings.TrimSpace(line) == "" {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 5 {
			return nil, fmt.Errorf("procfs: maps line %d: %q", lineNo+1, line)
		}
		addrs := strings.SplitN(fields[0], "-", 2)
		if len(addrs) != 2 {
			return nil, fmt.Errorf("procfs: maps line %d: bad address range %q", lineNo+1, fields[0])
		}
		start, err := strconv.ParseUint(addrs[0], 16, 64)
		if err != nil {
			return nil, fmt.Errorf("procfs: maps line %d: %v", lineNo+1, err)
		}
		end, err := strconv.ParseUint(addrs[1], 16, 64)
		if err != nil {
			return nil, fmt.Errorf("procfs: maps line %d: %v", lineNo+1, err)
		}
		offset, err := strconv.ParseUint(fields[2], 16, 64)
		if err != nil {
			return nil, fmt.Errorf("procfs: maps line %d: %v", lineNo+1, err)
		}
		inode, err := strconv.ParseUint(fields[4], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("procfs: maps line %d: %v", lineNo+1, err)
		}
		r := Region{Start: start, End: end, Perms: fields[1], Offset: offset, Dev: fields[3], Inode: inode}
		if len(fields) >= 6 {
			r.Path = fields[5]
		}
		out = append(out, r)
	}
	return out, nil
}

// MappedPaths returns the distinct file paths in the regions, in first-seen
// order, skipping anonymous and pseudo ("[heap]") mappings.
func MappedPaths(regions []Region) []string {
	seen := make(map[string]bool)
	var out []string
	for _, r := range regions {
		p := r.Path
		if p == "" || strings.HasPrefix(p, "[") || seen[p] {
			continue
		}
		seen[p] = true
		out = append(out, p)
	}
	return out
}
