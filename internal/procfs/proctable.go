package procfs

import (
	"fmt"
	"sync"
)

// Proc is one simulated process: the fields siren.so collects via system
// calls and /proc/self.
type Proc struct {
	PID       int
	PPID      int
	UID       uint32
	GID       uint32
	Exe       string // target of /proc/self/exe
	Cmdline   []string
	Env       map[string]string
	Maps      []Region
	StartTime int64 // unix seconds
	ExitTime  int64 // zero while running
	Container bool  // true when running inside a container (no host mounts)
}

// Getenv looks up an environment variable, empty when unset.
func (p *Proc) Getenv(key string) string { return p.Env[key] }

// CloneEnv copies the environment (children must not alias the parent's).
func CloneEnv(env map[string]string) map[string]string {
	out := make(map[string]string, len(env))
	for k, v := range env {
		out[k] = v
	}
	return out
}

// Table is a thread-safe process table with wrapping PID allocation,
// fork/exec/exit semantics, and lookup of live processes.
type Table struct {
	mu      sync.Mutex
	procs   map[int]*Proc
	nextPID int
	maxPID  int
	history int // count of all processes ever spawned
}

// NewTable returns a process table allocating PIDs in [2, maxPID]. A maxPID
// of 0 uses the Linux default of 4194304; small values exercise PID reuse.
func NewTable(maxPID int) *Table {
	if maxPID <= 0 {
		maxPID = 4194304
	}
	return &Table{procs: make(map[int]*Proc), nextPID: 1, maxPID: maxPID}
}

// Spawn creates a new process as a child of ppid (0 for an init-parented
// process). The env map is cloned.
func (t *Table) Spawn(ppid int, exe string, env map[string]string, uid, gid uint32, now int64) (*Proc, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	pid, err := t.allocPID()
	if err != nil {
		return nil, err
	}
	p := &Proc{
		PID: pid, PPID: ppid, UID: uid, GID: gid,
		Exe: exe, Env: CloneEnv(env), StartTime: now,
	}
	t.procs[pid] = p
	t.history++
	return p, nil
}

// Exec replaces the process image of pid with a new executable, keeping the
// PID — the exec()-family behaviour that motivates SIREN's executable-path
// hash disambiguation. The environment is retained (execve with inherited
// env); maps are reset.
func (t *Table) Exec(pid int, exe string, now int64) (*Proc, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	p, ok := t.procs[pid]
	if !ok {
		return nil, fmt.Errorf("procfs: exec: no such process %d", pid)
	}
	p.Exe = exe
	p.Maps = nil
	p.StartTime = now
	return p, nil
}

// Exit marks pid as exited and frees its PID for reuse.
func (t *Table) Exit(pid int, now int64) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	p, ok := t.procs[pid]
	if !ok {
		return fmt.Errorf("procfs: exit: no such process %d", pid)
	}
	p.ExitTime = now
	delete(t.procs, pid)
	return nil
}

// Lookup returns the live process with the given PID.
func (t *Table) Lookup(pid int) (*Proc, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	p, ok := t.procs[pid]
	return p, ok
}

// Live reports the number of live processes; Spawned the total ever created.
func (t *Table) Live() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.procs)
}

// Spawned reports the total number of processes ever created.
func (t *Table) Spawned() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.history
}

func (t *Table) allocPID() (int, error) {
	for tries := 0; tries < t.maxPID; tries++ {
		t.nextPID++
		if t.nextPID > t.maxPID {
			t.nextPID = 2 // wrap; PID 1 is init
		}
		if _, taken := t.procs[t.nextPID]; !taken {
			return t.nextPID, nil
		}
	}
	return 0, fmt.Errorf("procfs: PID space exhausted (%d live)", len(t.procs))
}
