package procfs

import (
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestFSInstallAndRead(t *testing.T) {
	fs := NewFS()
	fs.Install("/usr/bin/bash", []byte("elf-bytes"), FileMeta{UID: 0, GID: 0, Mtime: 1700000000})
	data, err := fs.ReadFile("/usr/bin/bash")
	if err != nil || string(data) != "elf-bytes" {
		t.Fatalf("ReadFile = %q, %v", data, err)
	}
	meta, err := fs.Stat("/usr/bin/bash")
	if err != nil {
		t.Fatal(err)
	}
	if meta.Inode == 0 || meta.Size != 9 || meta.Mode != 0o755 {
		t.Errorf("meta = %+v", meta)
	}
	if _, err := fs.ReadFile("/no/such"); !errors.Is(err, ErrNotExist) {
		t.Errorf("missing file error = %v", err)
	}
	if fs.Exists("/no/such") || !fs.Exists("/usr/bin/bash") {
		t.Error("Exists wrong")
	}
}

func TestFSInodesUnique(t *testing.T) {
	fs := NewFS()
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		f := fs.Install("/f"+string(rune('a'+i%26))+strings.Repeat("x", i/26), nil, FileMeta{})
		if seen[f.Meta.Inode] {
			t.Fatalf("inode %d reused", f.Meta.Inode)
		}
		seen[f.Meta.Inode] = true
	}
}

func TestFSList(t *testing.T) {
	fs := NewFS()
	fs.Install("/usr/bin/ls", nil, FileMeta{})
	fs.Install("/usr/bin/cat", nil, FileMeta{})
	fs.Install("/opt/app", nil, FileMeta{})
	got := fs.List("/usr/bin/")
	if !reflect.DeepEqual(got, []string{"/usr/bin/cat", "/usr/bin/ls"}) {
		t.Errorf("List = %q", got)
	}
	if fs.Len() != 3 {
		t.Errorf("Len = %d", fs.Len())
	}
}

func TestMapsRoundTrip(t *testing.T) {
	regions := []Region{
		{Start: 0x400000, End: 0x401000, Perms: "r-xp", Offset: 0, Dev: "fd:00", Inode: 1234, Path: "/usr/bin/bash"},
		{Start: 0x7f0000000000, End: 0x7f0000021000, Perms: "r--p", Offset: 0x1000, Dev: "fd:00", Inode: 99, Path: "/lib64/libtinfo.so.6"},
		{Start: 0x7ffe00000000, End: 0x7ffe00021000, Perms: "rw-p", Offset: 0, Dev: "00:00", Inode: 0, Path: "[stack]"},
		{Start: 0x7f0000100000, End: 0x7f0000101000, Perms: "rw-p", Offset: 0, Dev: "00:00", Inode: 0},
	}
	text := RenderMaps(regions)
	parsed, err := ParseMaps(text)
	if err != nil {
		t.Fatalf("ParseMaps: %v\n%s", err, text)
	}
	if !reflect.DeepEqual(parsed, normaliseDev(regions)) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", parsed, regions)
	}
}

func normaliseDev(rs []Region) []Region {
	out := make([]Region, len(rs))
	copy(out, rs)
	for i := range out {
		if out[i].Dev == "" {
			out[i].Dev = "00:00"
		}
	}
	return out
}

func TestParseMapsRejectsGarbage(t *testing.T) {
	for _, bad := range []string{"nonsense", "1234 r-xp", "zz-yy r-xp 0 fd:00 1"} {
		if _, err := ParseMaps(bad); err == nil {
			t.Errorf("ParseMaps(%q) should fail", bad)
		}
	}
	if rs, err := ParseMaps("\n \n"); err != nil || rs != nil {
		t.Errorf("blank input: %v, %v", rs, err)
	}
}

func TestMapsQuickRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(n uint8) bool {
		var regions []Region
		base := uint64(0x400000)
		for i := 0; i < int(n)%20; i++ {
			size := uint64(0x1000 * (1 + rng.Intn(64)))
			r := Region{
				Start: base, End: base + size,
				Perms: []string{"r-xp", "r--p", "rw-p"}[rng.Intn(3)],
				Dev:   "fd:00", Inode: uint64(rng.Intn(100000)),
			}
			if rng.Intn(3) > 0 {
				r.Path = "/lib64/lib" + string(rune('a'+rng.Intn(26))) + ".so"
			}
			base += size + 0x1000
			regions = append(regions, r)
		}
		parsed, err := ParseMaps(RenderMaps(regions))
		if err != nil {
			return false
		}
		return reflect.DeepEqual(parsed, regions) || (regions == nil && parsed == nil) || len(regions) == 0 && parsed == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestMappedPaths(t *testing.T) {
	regions := []Region{
		{Path: "/usr/bin/python3.10"},
		{Path: "/usr/lib64/libpython3.10.so"},
		{Path: "/usr/bin/python3.10"}, // duplicate mapping (r-x + r--)
		{Path: "[heap]"},
		{Path: ""},
		{Path: "/usr/lib64/python3.10/lib-dynload/_heapq.so"},
	}
	got := MappedPaths(regions)
	want := []string{"/usr/bin/python3.10", "/usr/lib64/libpython3.10.so", "/usr/lib64/python3.10/lib-dynload/_heapq.so"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("MappedPaths = %q, want %q", got, want)
	}
}

func TestSpawnExecExit(t *testing.T) {
	tbl := NewTable(0)
	env := map[string]string{"SLURM_JOB_ID": "42"}
	p, err := tbl.Spawn(1, "/usr/bin/bash", env, 1000, 1000, 1700000000)
	if err != nil {
		t.Fatal(err)
	}
	if p.PID < 2 || p.PPID != 1 || p.Exe != "/usr/bin/bash" {
		t.Errorf("proc = %+v", p)
	}
	// Env must be cloned, not aliased.
	env["SLURM_JOB_ID"] = "43"
	if p.Getenv("SLURM_JOB_ID") != "42" {
		t.Error("env aliased into process")
	}

	// exec() keeps the PID, swaps the image.
	oldPID := p.PID
	p2, err := tbl.Exec(p.PID, "/scratch/user/a.out", 1700000001)
	if err != nil {
		t.Fatal(err)
	}
	if p2.PID != oldPID || p2.Exe != "/scratch/user/a.out" {
		t.Errorf("after exec: %+v", p2)
	}
	if p2.Getenv("SLURM_JOB_ID") != "42" {
		t.Error("exec dropped the environment")
	}

	if err := tbl.Exit(p.PID, 1700000002); err != nil {
		t.Fatal(err)
	}
	if _, ok := tbl.Lookup(oldPID); ok {
		t.Error("exited process still visible")
	}
	if err := tbl.Exit(oldPID, 0); err == nil {
		t.Error("double exit should fail")
	}
	if _, err := tbl.Exec(oldPID, "/x", 0); err == nil {
		t.Error("exec on dead PID should fail")
	}
}

func TestPIDReuseAfterWrap(t *testing.T) {
	tbl := NewTable(8) // PIDs 2..8
	var first *Proc
	for i := 0; i < 7; i++ {
		p, err := tbl.Spawn(1, "/bin/x", nil, 0, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = p
		}
	}
	// Table full now.
	if _, err := tbl.Spawn(1, "/bin/y", nil, 0, 0, 0); err == nil {
		t.Fatal("expected PID exhaustion")
	}
	if err := tbl.Exit(first.PID, 1); err != nil {
		t.Fatal(err)
	}
	p, err := tbl.Spawn(1, "/bin/z", nil, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.PID != first.PID {
		t.Errorf("expected PID %d reuse, got %d", first.PID, p.PID)
	}
	if tbl.Spawned() != 8 {
		t.Errorf("Spawned = %d, want 8", tbl.Spawned())
	}
}

func TestConcurrentSpawn(t *testing.T) {
	tbl := NewTable(0)
	done := make(chan int, 8)
	for g := 0; g < 8; g++ {
		go func() {
			n := 0
			for i := 0; i < 200; i++ {
				if p, err := tbl.Spawn(1, "/bin/p", nil, 0, 0, 0); err == nil {
					n++
					if i%3 == 0 {
						tbl.Exit(p.PID, 1)
					}
				}
			}
			done <- n
		}()
	}
	total := 0
	for g := 0; g < 8; g++ {
		total += <-done
	}
	if total != 1600 {
		t.Errorf("spawned %d, want 1600", total)
	}
	if tbl.Spawned() != 1600 {
		t.Errorf("Spawned = %d", tbl.Spawned())
	}
}

func BenchmarkRenderParseMaps(b *testing.B) {
	var regions []Region
	base := uint64(0x7f0000000000)
	for i := 0; i < 60; i++ {
		regions = append(regions, Region{
			Start: base, End: base + 0x21000, Perms: "r-xp", Dev: "fd:00",
			Inode: uint64(i), Path: "/lib64/libsomething.so.6",
		})
		base += 0x100000
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		text := RenderMaps(regions)
		if _, err := ParseMaps(text); err != nil {
			b.Fatal(err)
		}
	}
}
