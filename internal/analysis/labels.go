// Package analysis implements SIREN's post-processing analyses: the user,
// executable, library, compiler, label, similarity, and Python statistics
// that make up every table and figure of the paper's evaluation (§4).
package analysis

import (
	"regexp"
	"strings"
)

// UnknownLabel is assigned to user executables whose path matches no
// software rule.
const UnknownLabel = "UNKNOWN"

// labelRule maps a path pattern to a software label, the way system
// operators label executables with regular expressions (paper §4.3).
type labelRule struct {
	label string
	re    *regexp.Regexp
}

// labelRules are evaluated in order; first match wins.
var labelRules = []labelRule{
	{"LAMMPS", regexp.MustCompile(`(?i)lammps|/lmp[^/]*$`)},
	{"GROMACS", regexp.MustCompile(`(?i)gromacs|/gmx[^/]*$`)},
	{"miniconda", regexp.MustCompile(`(?i)conda|mamba`)},
	{"janko", regexp.MustCompile(`(?i)janko`)},
	{"icon", regexp.MustCompile(`(?i)icon`)},
	{"amber", regexp.MustCompile(`(?i)amber|pmemd|sander`)},
	{"gzip", regexp.MustCompile(`(?i)gzip`)},
	{"alexandria", regexp.MustCompile(`(?i)alexandria`)},
	{"RadRad", regexp.MustCompile(`(?i)radrad`)},
}

// DeriveLabel maps an executable path to a software label (UNKNOWN when no
// rule matches).
func DeriveLabel(exePath string) string {
	for _, r := range labelRules {
		if r.re.MatchString(exePath) {
			return r.label
		}
	}
	return UnknownLabel
}

// LibrarySubstrings is the ordered substring list of the paper (§4.3
// "Derived and filtered"): a library path's tag is the '-'-join of every
// substring it contains, in this order. Order matters: it defines the tag
// spelling ("rocfft-rocm-fft", "quadmath-cray", …).
var LibrarySubstrings = []string{
	"libsci", "pthread", "pmi", "netcdf", "hdf5", "fortran", "parallel",
	"python", "fabric", "numa", "boost", "openacc", "amdgpu", "cuda", "drm",
	"rocsolver", "rocsparse", "rocfft", "MIOpen", "rocm", "gromacs", "blas",
	"fft", "torch", "quadmath", "craymath", "cray", "tykky", "climatedt",
	"amber", "spack", "yaml", "java", "siren",
}

// DeriveLibraryTag maps a library path to its derived tag, or "" when no
// substring matches (an uninformative library, filtered out).
func DeriveLibraryTag(libPath string) string {
	var parts []string
	for _, sub := range LibrarySubstrings {
		if strings.Contains(libPath, sub) {
			parts = append(parts, sub)
		}
	}
	return strings.Join(parts, "-")
}

// DeriveLibraryTags maps a loaded-objects list to its distinct tags in
// first-seen order.
func DeriveLibraryTags(objects []string) []string {
	seen := make(map[string]bool)
	var out []string
	for _, o := range objects {
		tag := DeriveLibraryTag(o)
		if tag == "" || seen[tag] {
			continue
		}
		seen[tag] = true
		out = append(out, tag)
	}
	return out
}
