package analysis

import (
	"sort"

	"siren/internal/postprocess"
	"siren/internal/ssdeep"
)

// Cluster is a group of distinct executables recognised as the same
// software by fuzzy-hash similarity — the paper's "recognition of repeated
// executions" generalised beyond exact matches: recompiled, re-versioned,
// or lightly modified binaries land in one cluster.
type Cluster struct {
	// Members are the distinct executables (one representative record per
	// unique (FILE_H, path) pair), sorted by path. Keying on the pair keeps
	// membership deterministic when two paths share one binary — the
	// UNKNOWN a.out that is byte-identical to an icon build must surface
	// under its own path regardless of record arrival order.
	Members []*postprocess.ProcessRecord
	// Labels are the distinct derived labels of the members, sorted. A
	// healthy cluster has one label (plus possibly UNKNOWN — which is how
	// clustering *names* unknowns).
	Labels []string
	// Processes is the total number of process executions across members.
	Processes int
}

// DominantLabel returns the most specific label of the cluster: the first
// non-UNKNOWN label, or UNKNOWN when the whole cluster is unidentified.
func (c *Cluster) DominantLabel() string {
	for _, l := range c.Labels {
		if l != UnknownLabel {
			return l
		}
	}
	return UnknownLabel
}

// SimilarityClusters groups every distinct user executable by FILE_H
// similarity at the given threshold (0–100) using single-linkage
// agglomeration: executables whose digests score >= threshold are linked,
// and connected components become clusters. Clusters are returned largest
// first (by member count, ties by dominant label).
//
// Threshold semantics follow Table 7's intuition: ~60+ links rebuilds of the
// same source; low thresholds start merging unrelated software; 100 reduces
// to exact-digest identity (the XALT behaviour).
func (d *Dataset) SimilarityClusters(threshold int, backend ssdeep.Backend) []Cluster {
	// One representative record per distinct FILE_H, with process counts.
	type bin struct {
		rec   *postprocess.ProcessRecord
		procs int
	}
	var bins []*bin
	index := make(map[string]*bin)
	for _, r := range d.Records {
		if r.Category != "user" || r.FileH == "" {
			continue
		}
		key := r.FileH + "\x1f" + r.Exe
		if b, ok := index[key]; ok {
			b.procs++
			continue
		}
		b := &bin{rec: r, procs: 1}
		index[key] = b
		bins = append(bins, b)
	}
	sort.Slice(bins, func(i, j int) bool {
		if bins[i].rec.Exe != bins[j].rec.Exe {
			return bins[i].rec.Exe < bins[j].rec.Exe
		}
		return bins[i].rec.FileH < bins[j].rec.FileH
	})

	// Union-find over pairwise scores, pruned by the block-size bucketing
	// inside the Matcher.
	parent := make([]int, len(bins))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[rb] = ra
		}
	}

	digests := make([]ssdeep.Digest, len(bins))
	valid := make([]bool, len(bins))
	for i, b := range bins {
		dg, err := ssdeep.ParseDigest(b.rec.FileH)
		if err != nil {
			continue // unparseable digest: the bin stays a singleton
		}
		digests[i] = dg
		valid[i] = true
	}
	for i := 0; i < len(bins); i++ {
		if !valid[i] {
			continue
		}
		for j := i + 1; j < len(bins); j++ {
			if !valid[j] || find(i) == find(j) {
				continue
			}
			if ssdeep.CompareDigests(digests[i], digests[j], backend) >= threshold {
				union(i, j)
			}
		}
	}

	groups := make(map[int][]*bin)
	for i, b := range bins {
		root := find(i)
		groups[root] = append(groups[root], b)
	}
	clusters := make([]Cluster, 0, len(groups))
	for _, members := range groups {
		var c Cluster
		labelSet := make(map[string]bool)
		for _, m := range members {
			c.Members = append(c.Members, m.rec)
			c.Processes += m.procs
			labelSet[DeriveLabel(m.rec.Exe)] = true
		}
		sort.Slice(c.Members, func(i, j int) bool { return c.Members[i].Exe < c.Members[j].Exe })
		for l := range labelSet {
			c.Labels = append(c.Labels, l)
		}
		sort.Strings(c.Labels)
		clusters = append(clusters, c)
	}
	sort.Slice(clusters, func(i, j int) bool {
		if len(clusters[i].Members) != len(clusters[j].Members) {
			return len(clusters[i].Members) > len(clusters[j].Members)
		}
		return clusters[i].DominantLabel() < clusters[j].DominantLabel()
	})
	return clusters
}

// ClusterPurity scores a clustering against the derived labels: the
// fraction of member executables whose label equals their cluster's
// dominant label, with UNKNOWN members counting as correct when clustered
// with a known label (that is the desired outcome — the unknown got
// identified). Returns purity in [0,1] and the cluster count.
func ClusterPurity(clusters []Cluster) (float64, int) {
	total, correct := 0, 0
	for _, c := range clusters {
		dom := c.DominantLabel()
		for _, m := range c.Members {
			total++
			l := DeriveLabel(m.Exe)
			if l == dom || l == UnknownLabel {
				correct++
			}
		}
	}
	if total == 0 {
		return 1, len(clusters)
	}
	return float64(correct) / float64(total), len(clusters)
}
