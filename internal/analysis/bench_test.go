// BenchmarkIdentify measures the query cost of the indexed fingerprint
// search against the exhaustive scan it replaced, across catalog sizes —
// the scaling evidence behind DESIGN.md §9 and EXPERIMENTS.md §8. Catalogs
// are synthesized directly as digest strings (hashing 100k executables in a
// benchmark setup would dwarf the measurement): families of gram-sharing
// signatures over comparable block sizes, the same shape ingest produces.
package analysis

import (
	"fmt"
	"math/rand"
	"testing"

	"siren/internal/postprocess"
	"siren/internal/ssdeep"
)

// benchDigest mutates a family base signature into a well-formed digest.
// Records of one family share most 7-grams (different builds of the same
// application); distinct families are gram-disjoint with overwhelming
// probability, so a query touches one family's worth of candidates no
// matter how many families the catalog holds.
func benchDigest(rng *rand.Rand, base []byte) string {
	s1 := append([]byte(nil), base...)
	for m := 0; m < 4; m++ {
		s1[rng.Intn(len(s1))] = b64[rng.Intn(64)]
	}
	s2 := append([]byte(nil), base[:32]...)
	for m := 0; m < 2; m++ {
		s2[rng.Intn(len(s2))] = b64[rng.Intn(64)]
	}
	bs := uint32(192) << rng.Intn(3)
	return fmt.Sprintf("%d:%s:%s", bs, s1, s2)
}

// benchCatalog builds n records spread over n/64 families, plus 32 queries
// drawn from the same families. Query candidate counts stay roughly flat in
// n — the regime the index targets; the exhaustive path still scores all n.
func benchCatalog(n int) ([]*postprocess.ProcessRecord, []Digests) {
	rng := rand.New(rand.NewSource(271828))
	families := max(16, n/64)
	bases := make([][]byte, families)
	for f := range bases {
		bases[f] = make([]byte, 64)
		for i := range bases[f] {
			bases[f][i] = b64[rng.Intn(64)]
		}
	}
	six := func(base []byte) [6]string {
		var d [6]string
		for c := range d {
			d[c] = benchDigest(rng, base)
		}
		return d
	}
	records := make([]*postprocess.ProcessRecord, 0, n)
	for i := 0; i < n; i++ {
		d := six(bases[i%families])
		records = append(records, &postprocess.ProcessRecord{
			JobID: fmt.Sprintf("job-%d", i%97), Category: "user",
			Exe:      fmt.Sprintf("/appl/lammps/%03d/bin/lmp", i%families),
			ModulesH: d[0], CompilersH: d[1], ObjectsH: d[2],
			StringsH: d[4], SymbolsH: d[5],
			// Unique well-formed FILE_H so every record is admitted.
			FileH: fmt.Sprintf("192:%s:bench%d", bases[i%families][:40], i),
		})
	}
	queries := make([]Digests, 32)
	for i := range queries {
		d := six(bases[rng.Intn(families)])
		queries[i] = Digests{Modules: d[0], Compilers: d[1], Objects: d[2],
			File: d[3], Strings: d[4], Symbols: d[5]}
	}
	return records, queries
}

func BenchmarkIdentify(b *testing.B) {
	for _, n := range []int{1000, 10000, 100000} {
		// Catalog synthesis lives inside the size sub-benchmark so a -bench
		// pattern selecting one size (the bench-gate does) never pays for the
		// others' setup; -short skips the 100k tier to keep smoke runs quick.
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			if testing.Short() && n > 10000 {
				b.Skip("100k catalog skipped in -short mode")
			}
			records, queries := benchCatalog(n)
			ix := NewFingerprintIndex(records)
			if ix.Len() != n {
				b.Fatalf("catalog admitted %d of %d records", ix.Len(), n)
			}
			b.Run("indexed", func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					ix.Search(queries[i%len(queries)], 10, ssdeep.BackendWeighted)
				}
			})
			b.Run("exhaustive", func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					ix.SearchExhaustive(queries[i%len(queries)], 10, ssdeep.BackendWeighted)
				}
			})
		})
	}
}

// BenchmarkIndexDerive measures NewFingerprintIndexFrom for the steady-state
// catalog refresh: a large unchanged base plus a small batch of new records.
func BenchmarkIndexDerive(b *testing.B) {
	const n = 10000
	records, _ := benchCatalog(n + 64)
	base := records[:n]
	ix := NewFingerprintIndex(base)
	b.Run(fmt.Sprintf("splice/n=%d", n), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			NewFingerprintIndexFrom(ix, records)
		}
	})
	b.Run(fmt.Sprintf("rebuild/n=%d", n), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			NewFingerprintIndex(records)
		}
	})
}
