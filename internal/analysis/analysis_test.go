package analysis

import (
	"reflect"
	"testing"

	"siren/internal/postprocess"
	"siren/internal/ssdeep"
)

func rec(uid uint32, job, exe, category string, extras ...func(*postprocess.ProcessRecord)) *postprocess.ProcessRecord {
	r := &postprocess.ProcessRecord{UID: uid, JobID: job, Exe: exe, Category: category}
	for _, f := range extras {
		f(r)
	}
	return r
}

func withFileH(h string) func(*postprocess.ProcessRecord) {
	return func(r *postprocess.ProcessRecord) { r.FileH = h }
}

func withObjects(objs ...string) func(*postprocess.ProcessRecord) {
	return func(r *postprocess.ProcessRecord) { r.Objects = objs }
}

func withObjectsH(h string) func(*postprocess.ProcessRecord) {
	return func(r *postprocess.ProcessRecord) { r.ObjectsH = h }
}

func withCompilers(cs ...string) func(*postprocess.ProcessRecord) {
	return func(r *postprocess.ProcessRecord) { r.Compilers = cs }
}

func withScript(path, fileH string) func(*postprocess.ProcessRecord) {
	return func(r *postprocess.ProcessRecord) {
		r.Script = &postprocess.ScriptRecord{Path: path, FileH: fileH}
	}
}

func withImports(pkgs ...string) func(*postprocess.ProcessRecord) {
	return func(r *postprocess.ProcessRecord) { r.Imports = pkgs }
}

func TestDeriveLabel(t *testing.T) {
	cases := map[string]string{
		"/users/u/lammps/build/lmp":       "LAMMPS",
		"/appl/soft/chem/gromacs/bin/gmx": "GROMACS",
		"/users/u/miniconda3/bin/conda":   "miniconda",
		"/users/u/miniconda3/bin/mamba":   "miniconda",
		"/users/u/janko/bin/janko":        "janko",
		"/scratch/p/icon/build/bin/icon":  "icon",
		"/appl/amber22/bin/pmemd.hip":     "amber",
		"/users/u/tools/gzip":             "gzip",
		"/users/u/alexandria/alexandria":  "alexandria",
		"/users/u/RadRad/bin/RadRad":      "RadRad",
		"/scratch/p/run/a.out":            UnknownLabel,
		"/users/u/bin/mystery":            UnknownLabel,
	}
	for path, want := range cases {
		if got := DeriveLabel(path); got != want {
			t.Errorf("DeriveLabel(%q) = %q, want %q", path, got, want)
		}
	}
}

func TestDeriveLibraryTag(t *testing.T) {
	cases := map[string]string{
		"/opt/rocm/lib/librocfft.so.0":                                   "rocfft-rocm-fft",
		"/opt/cray/pe/gcc-libs/libquadmath.so.0":                         "quadmath-cray",
		"/opt/cray/libfabric/lib64/libfabric.so.1":                       "fabric-cray",
		"/lib64/libpthread.so.0":                                         "pthread",
		"/opt/siren/lib/siren.so":                                        "siren",
		"/appl/climatedt/lib/libclimatedt_yaml.so.1":                     "climatedt-yaml",
		"/opt/cray/pe/hdf5-parallel/lib/libhdf5_fortran_parallel.so.200": "hdf5-fortran-parallel-cray",
		"/appl/spack/opt/lib/libdrm_amdgpu.so.1":                         "amdgpu-drm-spack",
		"/opt/cray/pe/lib64/libcraymath.so.1":                            "craymath-cray",
		"/opt/rocm/lib/libMIOpen.so.1":                                   "MIOpen-rocm",
		"/lib64/libc.so.6":                                               "",
		"/lib64/libtinfo.so.6":                                           "",
	}
	for path, want := range cases {
		if got := DeriveLibraryTag(path); got != want {
			t.Errorf("DeriveLibraryTag(%q) = %q, want %q", path, got, want)
		}
	}
}

func TestDeriveLibraryTagsDedup(t *testing.T) {
	got := DeriveLibraryTags([]string{
		"/opt/siren/lib/siren.so",
		"/lib64/libc.so.6",
		"/lib64/libpthread.so.0",
		"/lib64/libpthread.so.0",
	})
	if !reflect.DeepEqual(got, []string{"siren", "pthread"}) {
		t.Errorf("tags = %q", got)
	}
}

func TestUserStatsSortingAndCategories(t *testing.T) {
	d := NewDataset([]*postprocess.ProcessRecord{
		rec(2000, "j1", "/usr/bin/bash", "system"),
		rec(2000, "j2", "/usr/bin/bash", "system"),
		rec(2000, "j2", "/users/u/x", "user"),
		rec(3000, "j3", "/usr/bin/python3.10", "python"),
	})
	stats := d.UserStats()
	if len(stats) != 2 {
		t.Fatalf("stats = %+v", stats)
	}
	if stats[0].User != "user_1" || stats[0].Jobs != 2 {
		t.Errorf("row 0 = %+v", stats[0])
	}
	if stats[0].SystemProcs != 2 || stats[0].UserProcs != 1 || stats[0].PythonProcs != 0 {
		t.Errorf("row 0 categories = %+v", stats[0])
	}
	if stats[1].PythonProcs != 1 || stats[1].TotalProcs != 1 {
		t.Errorf("row 1 = %+v", stats[1])
	}
}

func TestUserNamingByUIDOrder(t *testing.T) {
	d := NewDataset([]*postprocess.ProcessRecord{
		rec(5000, "j", "/usr/bin/x", "system"),
		rec(1000, "j", "/usr/bin/x", "system"),
	})
	if d.UserName(1000) != "user_1" || d.UserName(5000) != "user_2" {
		t.Errorf("names: %s %s", d.UserName(1000), d.UserName(5000))
	}
	if d.UserName(9999) == "" {
		t.Error("unknown UID should still produce a name")
	}
	if got := d.Users(); !reflect.DeepEqual(got, []string{"user_1", "user_2"}) {
		t.Errorf("Users = %q", got)
	}
}

func TestTopSystemExecutables(t *testing.T) {
	d := NewDataset([]*postprocess.ProcessRecord{
		rec(1, "j1", "/usr/bin/srun", "system", withObjectsH("3:a:b")),
		rec(2, "j2", "/usr/bin/srun", "system", withObjectsH("3:c:d")),
		rec(1, "j1", "/usr/bin/rm", "system", withObjectsH("3:a:b")),
		rec(1, "j1", "/usr/bin/rm", "system", withObjectsH("3:a:b")),
		rec(1, "j1", "/users/u/app", "user"),
	})
	top := d.TopSystemExecutables(0)
	if len(top) != 2 {
		t.Fatalf("top = %+v", top)
	}
	if top[0].Path != "/usr/bin/srun" || top[0].UniqueUsers != 2 || top[0].UniqueObjectsH != 2 {
		t.Errorf("row 0 = %+v", top[0])
	}
	if top[1].Processes != 2 || top[1].UniqueObjectsH != 1 {
		t.Errorf("row 1 = %+v", top[1])
	}
	if d.SystemExecutableCount() != 2 {
		t.Errorf("system exe count = %d", d.SystemExecutableCount())
	}
	if got := d.TopSystemExecutables(1); len(got) != 1 {
		t.Errorf("topN truncation failed")
	}
}

func TestDeviatingLibraries(t *testing.T) {
	d := NewDataset([]*postprocess.ProcessRecord{
		rec(1, "j", "/usr/bin/bash", "system", withObjects("/lib64/libtinfo.so.6", "/lib64/libc.so.6")),
		rec(1, "j", "/usr/bin/bash", "system", withObjects("/lib64/libtinfo.so.6", "/lib64/libc.so.6")),
		rec(1, "j", "/usr/bin/bash", "system", withObjects("/pfs/SW/env/lib/libtinfo.so.6", "/lib64/libc.so.6", "/lib64/libm.so.6")),
	})
	sets := d.DeviatingLibraries("/usr/bin/bash")
	if len(sets) != 2 {
		t.Fatalf("sets = %+v", sets)
	}
	if sets[0].Processes != 2 {
		t.Errorf("majority count = %d", sets[0].Processes)
	}
	if got := sets[1].LibraryVariant("libm"); got != "/lib64/libm.so.6" {
		t.Errorf("libm variant = %q", got)
	}
	if got := sets[0].LibraryVariant("libm"); got != "–" {
		t.Errorf("majority libm = %q", got)
	}
}

func TestCompilerComboOf(t *testing.T) {
	combo := CompilerComboOf([]string{
		"GCC: (SUSE Linux) 13.3.0",
		"clang version 17.0.1 (Cray Inc.)",
		"GCC: (SUSE Linux) 13.3.0", // duplicate collapses
	})
	if combo != "GCC [SUSE], clang [Cray]" {
		t.Errorf("combo = %q", combo)
	}
}

func TestSimilaritySearchRanking(t *testing.T) {
	mk := func(data string) string {
		h, err := ssdeep.HashString(data + data + data + data + data + data + data + data)
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	base := "the quick brown fox jumps over the lazy dog and keeps running through the forest for a long while "
	hBase := mk(base)
	hNear := mk(base[:90] + "X changed tail somewhat here")
	hFar := mk("completely different content with nothing shared at all zzz qqq www 12345 67890 abcdefgh")

	unknown := &postprocess.ProcessRecord{FileH: hBase, StringsH: hBase, SymbolsH: hBase,
		ObjectsH: hBase, ModulesH: hBase, CompilersH: hBase}
	d := NewDataset([]*postprocess.ProcessRecord{
		rec(1, "j", "/scratch/p/icon/bin/icon", "user", withFileH(hBase), func(r *postprocess.ProcessRecord) {
			r.StringsH, r.SymbolsH, r.ObjectsH, r.ModulesH, r.CompilersH = hBase, hBase, hBase, hBase, hBase
		}),
		rec(1, "j", "/scratch/p/icon/bin/icon2", "user", withFileH(hNear), func(r *postprocess.ProcessRecord) {
			r.StringsH, r.SymbolsH, r.ObjectsH, r.ModulesH, r.CompilersH = hNear, hBase, hBase, hBase, hBase
		}),
		rec(1, "j", "/users/u/other/bin/gmx", "user", withFileH(hFar)),
		rec(1, "j", "/scratch/p/run/a.out", "user", withFileH(hBase)), // the unknown itself: excluded
	})
	rows := d.SimilaritySearch(unknown, 0, ssdeep.BackendWeighted)
	if len(rows) < 1 {
		t.Fatal("no rows")
	}
	if rows[0].Avg != 100 || rows[0].Label != "icon" {
		t.Errorf("row 0 = %+v", rows[0])
	}
	for _, r := range rows {
		if r.Label == UnknownLabel {
			t.Error("UNKNOWN instances must not appear in the ranking")
		}
	}
	if len(rows) >= 2 && rows[1].Avg >= rows[0].Avg {
		t.Error("not sorted")
	}
}

func TestIdentifyByHash(t *testing.T) {
	h1, _ := ssdeep.HashString("content one: a long enough string to hash meaningfully with some repetition, a long enough string to hash")
	d := NewDataset([]*postprocess.ProcessRecord{
		rec(1, "j", "/users/u/lammps/lmp", "user", withFileH(h1)),
	})
	rows := d.IdentifyByHash(h1, 5, ssdeep.BackendWeighted)
	if len(rows) != 1 || rows[0].Label != "LAMMPS" || rows[0].FileS != 100 {
		t.Errorf("rows = %+v", rows)
	}
}

func TestPythonInterpretersAndPackages(t *testing.T) {
	d := NewDataset([]*postprocess.ProcessRecord{
		rec(1, "j1", "/usr/bin/python3.10", "python", withScript("/u/a.py", "3:aa:bb"), withImports("heapq", "numpy")),
		rec(2, "j2", "/usr/bin/python3.10", "python", withScript("/u/b.py", "3:cc:dd"), withImports("heapq")),
		rec(2, "j3", "/usr/bin/python3.6", "python", withScript("/u/c.py", "3:ee:ff"), withImports("heapq", "mpi4py")),
	})
	rows := d.PythonInterpreters()
	if len(rows) != 2 {
		t.Fatalf("rows = %+v", rows)
	}
	if rows[0].Interpreter != "python3.10" || rows[0].UniqueUsers != 2 || rows[0].UniqueScriptH != 2 {
		t.Errorf("row 0 = %+v", rows[0])
	}
	pkgs := d.PythonPackages()
	byPkg := map[string]PackageStat{}
	for _, p := range pkgs {
		byPkg[p.Package] = p
	}
	if byPkg["heapq"].UniqueUsers != 2 || byPkg["heapq"].Processes != 3 {
		t.Errorf("heapq = %+v", byPkg["heapq"])
	}
	if byPkg["mpi4py"].UniqueScripts != 1 {
		t.Errorf("mpi4py = %+v", byPkg["mpi4py"])
	}
}

func TestMatrices(t *testing.T) {
	d := NewDataset([]*postprocess.ProcessRecord{
		rec(1, "j1", "/users/u/janko/janko", "user",
			withCompilers("GCC: (SUSE Linux) 13.3.0", "GCC: (HPE) 12.2.0"),
			withObjects("/opt/siren/lib/siren.so", "/lib64/libpthread.so.0")),
		rec(1, "j2", "/users/u/tools/gzip", "user",
			withCompilers("Linker: LLD 17.0.0 (AMD)"),
			withObjects("/opt/siren/lib/siren.so")),
	})
	cm := d.CompilerMatrix()
	if !cm.Used("janko", "GCC [SUSE]") || !cm.Used("janko", "GCC [HPE]") {
		t.Errorf("janko compilers: %+v", cm.Bits["janko"])
	}
	if !cm.Used("gzip", "LLD [AMD]") || cm.Used("gzip", "GCC [SUSE]") {
		t.Errorf("gzip compilers: %+v", cm.Bits["gzip"])
	}
	lm := d.LibraryMatrix()
	if !lm.Used("janko", "pthread") || !lm.Used("janko", "siren") {
		t.Errorf("janko libs: %+v", lm.Bits["janko"])
	}
	if lm.Used("gzip", "pthread") || !lm.Used("gzip", "siren") {
		t.Errorf("gzip libs: %+v", lm.Bits["gzip"])
	}
	if len(lm.Rows) != 2 || len(lm.Cols) != 2 {
		t.Errorf("matrix dims: rows=%v cols=%v", lm.Rows, lm.Cols)
	}
}
