package analysis

import (
	"fmt"
	"sort"
	"strings"

	"siren/internal/postprocess"
	"siren/internal/toolchain"
)

// Dataset wraps consolidated process records with the user anonymisation
// the paper applies (UIDs become user_1, user_2, … by first appearance).
type Dataset struct {
	Records []*postprocess.ProcessRecord
	users   map[uint32]string
}

// NewDataset builds a dataset, assigning anonymous user names (user_1,
// user_2, …) to UIDs in ascending UID order. The paper anonymises by random
// assignment; ordering by UID keeps the mapping deterministic regardless of
// record interleaving.
func NewDataset(records []*postprocess.ProcessRecord) *Dataset {
	d := &Dataset{Records: records, users: make(map[uint32]string)}
	var uids []uint32
	seen := make(map[uint32]bool)
	for _, r := range records {
		if !seen[r.UID] {
			seen[r.UID] = true
			uids = append(uids, r.UID)
		}
	}
	sort.Slice(uids, func(i, j int) bool { return uids[i] < uids[j] })
	for i, uid := range uids {
		d.users[uid] = fmt.Sprintf("user_%d", i+1)
	}
	return d
}

// ConsolidateDataset consolidates a store snapshot through the streaming,
// shard-parallel read path and wraps the records in a Dataset — the
// analysis-side entry point for whole-campaign group-bys. The store is
// never materialised as one []wire.Message; only the consolidated process
// records (what the tables and figures actually consume) are held. The
// snapshot may be a single store's (*sirendb.Snapshot) or the merged view
// of an N-receiver deployment (*sirendb.MergedSnapshot) — the analysis is
// identical either way. opts tune the streaming pass (worker count, job
// filter); the zero value is the shard-mirrored default.
func ConsolidateDataset(snap postprocess.SnapshotView, opts postprocess.StreamOptions) (*Dataset, postprocess.Stats) {
	records, stats := postprocess.ConsolidateSnapshot(snap, opts)
	return NewDataset(records), stats
}

// UserName returns the anonymised name for a UID.
func (d *Dataset) UserName(uid uint32) string {
	if n, ok := d.users[uid]; ok {
		return n
	}
	return fmt.Sprintf("uid_%d", uid)
}

// Users returns all anonymised user names, sorted.
func (d *Dataset) Users() []string {
	out := make([]string, 0, len(d.users))
	for _, n := range d.users {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ---------------------------------------------------------------------------
// Table 2: users, jobs, processes.

// UserStat is one Table 2 row.
type UserStat struct {
	User        string
	Jobs        int
	SystemProcs int
	UserProcs   int
	PythonProcs int
	TotalProcs  int
}

// UserStats computes Table 2: per user, job count and process counts per
// category, sorted by jobs desc, then system/user/python process counts.
func (d *Dataset) UserStats() []UserStat {
	type acc struct {
		jobs         map[string]bool
		sys, usr, py int
	}
	byUser := make(map[string]*acc)
	for _, r := range d.Records {
		name := d.UserName(r.UID)
		a, ok := byUser[name]
		if !ok {
			a = &acc{jobs: make(map[string]bool)}
			byUser[name] = a
		}
		a.jobs[r.JobID] = true
		switch r.Category {
		case "system":
			a.sys++
		case "python":
			a.py++
		default:
			a.usr++
		}
	}
	out := make([]UserStat, 0, len(byUser))
	for name, a := range byUser {
		out = append(out, UserStat{
			User: name, Jobs: len(a.jobs),
			SystemProcs: a.sys, UserProcs: a.usr, PythonProcs: a.py,
			TotalProcs: a.sys + a.usr + a.py,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Jobs != b.Jobs {
			return a.Jobs > b.Jobs
		}
		if a.SystemProcs != b.SystemProcs {
			return a.SystemProcs > b.SystemProcs
		}
		if a.UserProcs != b.UserProcs {
			return a.UserProcs > b.UserProcs
		}
		if a.PythonProcs != b.PythonProcs {
			return a.PythonProcs > b.PythonProcs
		}
		return a.User < b.User
	})
	return out
}

// ---------------------------------------------------------------------------
// Table 3: top system-directory executables.

// ExeStat is one Table 3 row.
type ExeStat struct {
	Path           string
	UniqueUsers    int
	Jobs           int
	Processes      int
	UniqueObjectsH int
}

// TopSystemExecutables computes Table 3: system-directory executables ranked
// by unique users, jobs, processes, and unique OBJECTS_H. topN <= 0 returns
// all.
func (d *Dataset) TopSystemExecutables(topN int) []ExeStat {
	type acc struct {
		users, jobs, objH map[string]bool
		procs             int
	}
	byExe := make(map[string]*acc)
	for _, r := range d.Records {
		if r.Category != "system" {
			continue
		}
		a, ok := byExe[r.Exe]
		if !ok {
			a = &acc{users: map[string]bool{}, jobs: map[string]bool{}, objH: map[string]bool{}}
			byExe[r.Exe] = a
		}
		a.users[d.UserName(r.UID)] = true
		a.jobs[r.JobID] = true
		a.procs++
		if r.ObjectsH != "" {
			a.objH[r.ObjectsH] = true
		}
	}
	out := make([]ExeStat, 0, len(byExe))
	for exe, a := range byExe {
		out = append(out, ExeStat{Path: exe, UniqueUsers: len(a.users), Jobs: len(a.jobs),
			Processes: a.procs, UniqueObjectsH: len(a.objH)})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.UniqueUsers != b.UniqueUsers {
			return a.UniqueUsers > b.UniqueUsers
		}
		if a.Jobs != b.Jobs {
			return a.Jobs > b.Jobs
		}
		if a.Processes != b.Processes {
			return a.Processes > b.Processes
		}
		if a.UniqueObjectsH != b.UniqueObjectsH {
			return a.UniqueObjectsH > b.UniqueObjectsH
		}
		return a.Path < b.Path
	})
	if topN > 0 && len(out) > topN {
		out = out[:topN]
	}
	return out
}

// SystemExecutableCount reports how many distinct system-directory
// executables appear in the dataset (the paper reports 112).
func (d *Dataset) SystemExecutableCount() int {
	seen := make(map[string]bool)
	for _, r := range d.Records {
		if r.Category == "system" {
			seen[r.Exe] = true
		}
	}
	return len(seen)
}

// ---------------------------------------------------------------------------
// Table 4: deviating shared-library sets of one executable.

// ObjectSetStat is one Table 4 row: a distinct loaded-objects set of an
// executable and how many processes ran with it.
type ObjectSetStat struct {
	Objects   []string
	Processes int
}

// LibraryVariant extracts the path of the first loaded object whose basename
// starts with prefix ("libtinfo", "libm"), or "–" when absent — the Table 4
// presentation.
func (s ObjectSetStat) LibraryVariant(prefix string) string {
	for _, o := range s.Objects {
		base := o
		if i := strings.LastIndexByte(o, '/'); i >= 0 {
			base = o[i+1:]
		}
		if strings.HasPrefix(base, prefix) {
			return o
		}
	}
	return "–"
}

// DeviatingLibraries computes Table 4 for one executable path: its distinct
// loaded-objects sets sorted by descending process count.
func (d *Dataset) DeviatingLibraries(exePath string) []ObjectSetStat {
	counts := make(map[string]int)
	sets := make(map[string][]string)
	for _, r := range d.Records {
		if r.Exe != exePath || len(r.Objects) == 0 {
			continue
		}
		key := strings.Join(r.Objects, "\n")
		counts[key]++
		sets[key] = r.Objects
	}
	out := make([]ObjectSetStat, 0, len(counts))
	for k, n := range counts {
		out = append(out, ObjectSetStat{Objects: sets[k], Processes: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Processes != out[j].Processes {
			return out[i].Processes > out[j].Processes
		}
		return strings.Join(out[i].Objects, ",") < strings.Join(out[j].Objects, ",")
	})
	return out
}

// ---------------------------------------------------------------------------
// Table 5: derived labels for user applications.

// LabelStat is one Table 5 row.
type LabelStat struct {
	Label       string
	UniqueUsers int
	Jobs        int
	Processes   int
	UniqueFileH int
}

// DeriveLabels computes Table 5 over user-category records.
func (d *Dataset) DeriveLabels() []LabelStat {
	type acc struct {
		users, jobs, fileH map[string]bool
		procs              int
	}
	byLabel := make(map[string]*acc)
	for _, r := range d.Records {
		if r.Category != "user" {
			continue
		}
		label := DeriveLabel(r.Exe)
		a, ok := byLabel[label]
		if !ok {
			a = &acc{users: map[string]bool{}, jobs: map[string]bool{}, fileH: map[string]bool{}}
			byLabel[label] = a
		}
		a.users[d.UserName(r.UID)] = true
		a.jobs[r.JobID] = true
		a.procs++
		if r.FileH != "" {
			a.fileH[r.FileH] = true
		}
	}
	out := make([]LabelStat, 0, len(byLabel))
	for label, a := range byLabel {
		out = append(out, LabelStat{Label: label, UniqueUsers: len(a.users), Jobs: len(a.jobs),
			Processes: a.procs, UniqueFileH: len(a.fileH)})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.UniqueUsers != b.UniqueUsers {
			return a.UniqueUsers > b.UniqueUsers
		}
		if a.Jobs != b.Jobs {
			return a.Jobs > b.Jobs
		}
		if a.Processes != b.Processes {
			return a.Processes > b.Processes
		}
		if a.UniqueFileH != b.UniqueFileH {
			return a.UniqueFileH > b.UniqueFileH
		}
		return a.Label < b.Label
	})
	return out
}

// ---------------------------------------------------------------------------
// Table 6: compiler combinations of user applications.

// CompilerStat is one Table 6 row.
type CompilerStat struct {
	Compilers   string // comma-joined "Name [Prov]" labels
	UniqueUsers int
	Jobs        int
	Processes   int
	UniqueFileH int
}

// CompilerComboOf renders a record's compiler list as the Table 6 key.
func CompilerComboOf(compilers []string) string {
	var labels []string
	seen := make(map[string]bool)
	for _, c := range compilers {
		l := toolchain.ParseCommentLabel(c)
		if !seen[l] {
			seen[l] = true
			labels = append(labels, l)
		}
	}
	return strings.Join(labels, ", ")
}

// CompilerTable computes Table 6 over user-category records that carry
// compiler information.
func (d *Dataset) CompilerTable() []CompilerStat {
	type acc struct {
		users, jobs, fileH map[string]bool
		procs              int
	}
	byCombo := make(map[string]*acc)
	for _, r := range d.Records {
		if r.Category != "user" || len(r.Compilers) == 0 {
			continue
		}
		combo := CompilerComboOf(r.Compilers)
		a, ok := byCombo[combo]
		if !ok {
			a = &acc{users: map[string]bool{}, jobs: map[string]bool{}, fileH: map[string]bool{}}
			byCombo[combo] = a
		}
		a.users[d.UserName(r.UID)] = true
		a.jobs[r.JobID] = true
		a.procs++
		if r.FileH != "" {
			a.fileH[r.FileH] = true
		}
	}
	out := make([]CompilerStat, 0, len(byCombo))
	for combo, a := range byCombo {
		out = append(out, CompilerStat{Compilers: combo, UniqueUsers: len(a.users), Jobs: len(a.jobs),
			Processes: a.procs, UniqueFileH: len(a.fileH)})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.UniqueUsers != b.UniqueUsers {
			return a.UniqueUsers > b.UniqueUsers
		}
		if a.Jobs != b.Jobs {
			return a.Jobs > b.Jobs
		}
		if a.Processes != b.Processes {
			return a.Processes > b.Processes
		}
		if a.UniqueFileH != b.UniqueFileH {
			return a.UniqueFileH > b.UniqueFileH
		}
		return a.Compilers < b.Compilers
	})
	return out
}

// ---------------------------------------------------------------------------
// Table 8: Python interpreters.

// InterpreterStat is one Table 8 row.
type InterpreterStat struct {
	Interpreter   string // executable basename, e.g. "python3.10"
	UniqueUsers   int
	Jobs          int
	Processes     int
	UniqueScriptH int
}

// PythonInterpreters computes Table 8 over python-category records.
func (d *Dataset) PythonInterpreters() []InterpreterStat {
	type acc struct {
		users, jobs, scriptH map[string]bool
		procs                int
	}
	byExe := make(map[string]*acc)
	for _, r := range d.Records {
		if r.Category != "python" {
			continue
		}
		name := r.ExeName()
		a, ok := byExe[name]
		if !ok {
			a = &acc{users: map[string]bool{}, jobs: map[string]bool{}, scriptH: map[string]bool{}}
			byExe[name] = a
		}
		a.users[d.UserName(r.UID)] = true
		a.jobs[r.JobID] = true
		a.procs++
		if r.Script != nil && r.Script.FileH != "" {
			a.scriptH[r.Script.FileH] = true
		}
	}
	out := make([]InterpreterStat, 0, len(byExe))
	for name, a := range byExe {
		out = append(out, InterpreterStat{Interpreter: name, UniqueUsers: len(a.users),
			Jobs: len(a.jobs), Processes: a.procs, UniqueScriptH: len(a.scriptH)})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.UniqueUsers != b.UniqueUsers {
			return a.UniqueUsers > b.UniqueUsers
		}
		if a.Jobs != b.Jobs {
			return a.Jobs > b.Jobs
		}
		if a.Processes != b.Processes {
			return a.Processes > b.Processes
		}
		if a.UniqueScriptH != b.UniqueScriptH {
			return a.UniqueScriptH > b.UniqueScriptH
		}
		return a.Interpreter < b.Interpreter
	})
	return out
}

// ---------------------------------------------------------------------------
// Figure 2: derived+filtered shared objects of user applications.

// LibraryTagStat is one Figure 2 bar group.
type LibraryTagStat struct {
	Tag               string
	UniqueUsers       int
	Jobs              int
	Processes         int
	UniqueExecutables int
}

// DerivedLibraries computes Figure 2 over user-category records: per derived
// library tag, the count of unique users, jobs, processes, and unique
// executables (by FILE_H). Sorted by unique users desc, then jobs desc.
func (d *Dataset) DerivedLibraries() []LibraryTagStat {
	type acc struct {
		users, jobs, exes map[string]bool
		procs             int
	}
	byTag := make(map[string]*acc)
	for _, r := range d.Records {
		if r.Category != "user" {
			continue
		}
		for _, tag := range DeriveLibraryTags(r.Objects) {
			a, ok := byTag[tag]
			if !ok {
				a = &acc{users: map[string]bool{}, jobs: map[string]bool{}, exes: map[string]bool{}}
				byTag[tag] = a
			}
			a.users[d.UserName(r.UID)] = true
			a.jobs[r.JobID] = true
			a.procs++
			exeKey := r.FileH
			if exeKey == "" {
				exeKey = r.Exe
			}
			a.exes[exeKey] = true
		}
	}
	out := make([]LibraryTagStat, 0, len(byTag))
	for tag, a := range byTag {
		out = append(out, LibraryTagStat{Tag: tag, UniqueUsers: len(a.users), Jobs: len(a.jobs),
			Processes: a.procs, UniqueExecutables: len(a.exes)})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.UniqueUsers != b.UniqueUsers {
			return a.UniqueUsers > b.UniqueUsers
		}
		if a.Jobs != b.Jobs {
			return a.Jobs > b.Jobs
		}
		if a.Processes != b.Processes {
			return a.Processes > b.Processes
		}
		return a.Tag < b.Tag
	})
	return out
}

// ---------------------------------------------------------------------------
// Figure 3: imported Python packages.

// PackageStat is one Figure 3 bar group.
type PackageStat struct {
	Package       string
	UniqueUsers   int
	Jobs          int
	Processes     int
	UniqueScripts int
}

// PythonPackages computes Figure 3 over python-category records.
func (d *Dataset) PythonPackages() []PackageStat {
	type acc struct {
		users, jobs, scripts map[string]bool
		procs                int
	}
	byPkg := make(map[string]*acc)
	for _, r := range d.Records {
		if r.Category != "python" {
			continue
		}
		for _, pkg := range r.Imports {
			a, ok := byPkg[pkg]
			if !ok {
				a = &acc{users: map[string]bool{}, jobs: map[string]bool{}, scripts: map[string]bool{}}
				byPkg[pkg] = a
			}
			a.users[d.UserName(r.UID)] = true
			a.jobs[r.JobID] = true
			a.procs++
			if r.Script != nil && r.Script.FileH != "" {
				a.scripts[r.Script.FileH] = true
			}
		}
	}
	out := make([]PackageStat, 0, len(byPkg))
	for pkg, a := range byPkg {
		out = append(out, PackageStat{Package: pkg, UniqueUsers: len(a.users), Jobs: len(a.jobs),
			Processes: a.procs, UniqueScripts: len(a.scripts)})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.UniqueUsers != b.UniqueUsers {
			return a.UniqueUsers > b.UniqueUsers
		}
		if a.Jobs != b.Jobs {
			return a.Jobs > b.Jobs
		}
		if a.Processes != b.Processes {
			return a.Processes > b.Processes
		}
		return a.Package < b.Package
	})
	return out
}

// PythonPackageUsers maps each imported package to the sorted anonymised
// user names importing it — the detail the security-audit layer (pysec)
// needs beyond Figure 3's counts.
func (d *Dataset) PythonPackageUsers() map[string][]string {
	byPkg := make(map[string]map[string]bool)
	for _, r := range d.Records {
		if r.Category != "python" {
			continue
		}
		for _, pkg := range r.Imports {
			if byPkg[pkg] == nil {
				byPkg[pkg] = make(map[string]bool)
			}
			byPkg[pkg][d.UserName(r.UID)] = true
		}
	}
	out := make(map[string][]string, len(byPkg))
	for pkg, users := range byPkg {
		for u := range users {
			out[pkg] = append(out[pkg], u)
		}
		sort.Strings(out[pkg])
	}
	return out
}

// ---------------------------------------------------------------------------
// Figures 4 and 5: label × compiler and label × library matrices.

// Matrix is a binary usage matrix with named rows and columns.
type Matrix struct {
	Rows []string // software labels
	Cols []string
	Bits map[string]map[string]bool // row → col → used
}

// Used reports the cell value.
func (m *Matrix) Used(row, col string) bool { return m.Bits[row][col] }

// CompilerMatrix computes Figure 4: which compiler identifications appear in
// each labelled application's executables. Rows are ordered by Table 5
// ranking; columns by total usage desc.
func (d *Dataset) CompilerMatrix() *Matrix {
	return d.matrix(func(r *postprocess.ProcessRecord) []string {
		var out []string
		for _, c := range r.Compilers {
			out = append(out, toolchain.ParseCommentLabel(c))
		}
		return out
	})
}

// LibraryMatrix computes Figure 5: which derived library tags appear in each
// labelled application's loaded objects.
func (d *Dataset) LibraryMatrix() *Matrix {
	return d.matrix(func(r *postprocess.ProcessRecord) []string {
		return DeriveLibraryTags(r.Objects)
	})
}

func (d *Dataset) matrix(colsOf func(*postprocess.ProcessRecord) []string) *Matrix {
	m := &Matrix{Bits: make(map[string]map[string]bool)}
	colTotals := make(map[string]int)
	for _, r := range d.Records {
		if r.Category != "user" {
			continue
		}
		label := DeriveLabel(r.Exe)
		if m.Bits[label] == nil {
			m.Bits[label] = make(map[string]bool)
		}
		for _, col := range colsOf(r) {
			if col == "" {
				continue
			}
			if !m.Bits[label][col] {
				m.Bits[label][col] = true
				colTotals[col]++
			}
		}
	}
	for _, ls := range d.DeriveLabels() {
		if ls.Label != UnknownLabel {
			m.Rows = append(m.Rows, ls.Label)
		}
	}
	for col := range colTotals {
		m.Cols = append(m.Cols, col)
	}
	sort.Slice(m.Cols, func(i, j int) bool {
		if colTotals[m.Cols[i]] != colTotals[m.Cols[j]] {
			return colTotals[m.Cols[i]] > colTotals[m.Cols[j]]
		}
		return m.Cols[i] < m.Cols[j]
	})
	return m
}
