// Recall-vs-exhaustive equivalence of the indexed fingerprint search, and
// the incremental (spliced) index against a fresh build — the two
// guarantees DESIGN.md §9 rests on: pruning never loses a nonzero-scoring
// entry, and a generation derived by NewFingerprintIndexFrom ranks
// byte-identically to a full rebuild over the same records.
package analysis

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"siren/internal/postprocess"
	"siren/internal/ssdeep"
)

const b64 = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/"

// synthSig produces a signature that is a mutated copy of base — entries
// built from the same base share most 7-grams (the "same application,
// different build" population), while different bases are gram-disjoint
// with overwhelming probability.
func synthSig(rng *rand.Rand, base []byte, mutations, maxLen int) string {
	s := append([]byte(nil), base...)
	for m := 0; m < mutations; m++ {
		s[rng.Intn(len(s))] = b64[rng.Intn(64)]
	}
	if len(s) > maxLen {
		s = s[:maxLen]
	}
	n := 1 + rng.Intn(len(s))
	return string(s[:n])
}

// synthFamilies is a population generator for the equivalence tests: nFam
// gram-sharing families of signatures plus fully random outliers, over a
// small set of mutually comparable block sizes, with malformed digests,
// empty characteristics, and short-signature exact duplicates sprinkled in.
type synthFamilies struct {
	rng   *rand.Rand
	bases [][]byte
}

func newSynthFamilies(rng *rand.Rand, nFam int) *synthFamilies {
	sf := &synthFamilies{rng: rng}
	for f := 0; f < nFam; f++ {
		base := make([]byte, 64)
		for i := range base {
			base[i] = b64[rng.Intn(64)]
		}
		sf.bases = append(sf.bases, base)
	}
	return sf
}

func (sf *synthFamilies) digest(family int) string {
	rng := sf.rng
	switch rng.Intn(12) {
	case 0:
		return "" // missing characteristic
	case 1:
		return "not-a-digest" // malformed
	case 2:
		return "3:ab:c" // short signatures: exact-shortcut territory
	}
	bs := uint32(192) << rng.Intn(3) // 192, 384, 768: all mutually comparable
	base := sf.bases[family%len(sf.bases)]
	s1 := synthSig(rng, base, rng.Intn(8), 64)
	s2 := synthSig(rng, base[:32], rng.Intn(4), 32)
	if rng.Intn(6) == 0 { // gram-disjoint outlier
		out := make([]byte, 40)
		for i := range out {
			out[i] = b64[rng.Intn(64)]
		}
		s1, s2 = string(out), string(out[:12])
	}
	return fmt.Sprintf("%d:%s:%s", bs, s1, s2)
}

func (sf *synthFamilies) record(i int) *postprocess.ProcessRecord {
	rng := sf.rng
	fam := rng.Intn(len(sf.bases))
	r := &postprocess.ProcessRecord{
		JobID:    fmt.Sprintf("job-%d", i%97),
		Category: "user",
		Exe:      fmt.Sprintf("/appl/lammps/builds/%03d/lmp", i),
		FileH:    fmt.Sprintf("%d:FILEH%svariant%d:tail%d", uint32(192)<<rng.Intn(3), sf.bases[fam][:20], i, i),
	}
	r.ModulesH = sf.digest(fam)
	r.CompilersH = sf.digest(fam)
	r.ObjectsH = sf.digest(fam)
	r.StringsH = sf.digest(fam)
	r.SymbolsH = sf.digest(fam)
	switch rng.Intn(10) {
	case 0:
		r.FileH = "truncated:" // malformed FILE_H is still a valid catalog key
	case 1:
		r.Category = "system" // never catalogued
	case 2:
		r.Exe = "/scratch/run/a.out" // UNKNOWN label: never catalogued
	}
	return r
}

func (sf *synthFamilies) query() Digests {
	fam := sf.rng.Intn(len(sf.bases))
	return Digests{
		Modules:   sf.digest(fam),
		Compilers: sf.digest(fam),
		Objects:   sf.digest(fam),
		File:      sf.digest(fam),
		Strings:   sf.digest(fam),
		Symbols:   sf.digest(fam),
	}
}

// TestSearchEquivalentToExhaustive is the core recall guarantee, across
// catalog sizes from tiny to 1500+ entries: indexed Search output is
// byte-identical to the retained exhaustive path for full listings and
// every top-K cut, over shared-gram, disjoint-gram, near-duplicate,
// malformed, and real hashed digest populations.
func TestSearchEquivalentToExhaustive(t *testing.T) {
	for _, size := range []int{0, 3, 10, 100, 1000, 1500} {
		t.Run(fmt.Sprintf("synthetic/n=%d", size), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(1000 + size)))
			sf := newSynthFamilies(rng, 1+size/20)
			records := make([]*postprocess.ProcessRecord, 0, size)
			for i := 0; i < size; i++ {
				records = append(records, sf.record(i))
			}
			ix := NewFingerprintIndex(records)
			queries := make([]Digests, 0, 24)
			for i := 0; i < 20; i++ {
				queries = append(queries, sf.query())
			}
			if len(records) > 0 {
				queries = append(queries, RecordDigests(records[0]), RecordDigests(records[len(records)-1]))
			}
			queries = append(queries, Digests{}, Digests{File: "not-a-digest"})
			assertSearchEquivalence(t, ix, queries)
		})
	}

	t.Run("real-hashes", func(t *testing.T) {
		body := func(app string, variant int) string {
			var b strings.Builder
			for i := 0; i < 400; i++ {
				fmt.Fprintf(&b, "%s section %d symbol_%d ", app, i, i*variant%31)
			}
			return b.String()
		}
		var records []*postprocess.ProcessRecord
		for i := 0; i < 60; i++ {
			app := []string{"lammps", "gromacs", "icon"}[i%3]
			content := body(app, 1+i/3)
			h := func(suffix string) string {
				d, err := ssdeep.HashString(content + suffix)
				if err != nil {
					t.Fatal(err)
				}
				return d
			}
			records = append(records, &postprocess.ProcessRecord{
				JobID: fmt.Sprintf("job-%d", i), Category: "user",
				Exe:   fmt.Sprintf("/appl/%s/bin/%s%d", app, app, i),
				FileH: h("file"), ModulesH: h("modules"), CompilersH: h("compilers"),
				ObjectsH: h("objects"), StringsH: h("strings"), SymbolsH: h("symbols"),
			})
		}
		ix := NewFingerprintIndex(records)
		var queries []Digests
		for i := 0; i < len(records); i += 7 {
			queries = append(queries, RecordDigests(records[i]))
		}
		near, err := ssdeep.HashString(body("lammps", 2) + "file with a slightly different tail")
		if err != nil {
			t.Fatal(err)
		}
		queries = append(queries, Digests{File: near}, Digests{Strings: near, Symbols: "bogus"})
		assertSearchEquivalence(t, ix, queries)
	})
}

func assertSearchEquivalence(t *testing.T, ix *FingerprintIndex, queries []Digests) {
	t.Helper()
	for qi, q := range queries {
		full := ix.SearchExhaustive(q, 0, ssdeep.BackendWeighted)
		for _, topN := range []int{0, 1, 5, len(full)} {
			got := ix.Search(q, topN, ssdeep.BackendWeighted)
			want := ix.SearchExhaustive(q, topN, ssdeep.BackendWeighted)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("query %d topN=%d: indexed and exhaustive rankings diverge\n got  %+v\n want %+v",
					qi, topN, got, want)
			}
		}
	}
}

// TestIncrementalIndexMatchesFresh drives NewFingerprintIndexFrom through
// splices (append-only growth), tombstones (removed and replaced entries),
// and past the compaction threshold, asserting after every step that the
// derived index ranks byte-identically to a fresh full build over the same
// records — including queries that hit tombstoned ids.
func TestIncrementalIndexMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	sf := newSynthFamilies(rng, 12)
	records := make([]*postprocess.ProcessRecord, 0, 600)
	for i := 0; i < 200; i++ {
		records = append(records, sf.record(i))
	}
	ix := NewFingerprintIndex(records)
	if s := ix.Stats(); s.Extra != 0 || s.Dead != 0 {
		t.Fatalf("fresh index stats = %+v, want all-base", s)
	}

	check := func(step string) {
		t.Helper()
		fresh := NewFingerprintIndex(records)
		if ix.Len() != fresh.Len() {
			t.Fatalf("%s: Len = %d, fresh = %d", step, ix.Len(), fresh.Len())
		}
		var queries []Digests
		for i := 0; i < 15; i++ {
			queries = append(queries, sf.query())
		}
		for i := 0; i < len(records); i += 37 {
			queries = append(queries, RecordDigests(records[i]))
		}
		for qi, q := range queries {
			inc := ix.Search(q, 0, ssdeep.BackendWeighted)
			ful := fresh.Search(q, 0, ssdeep.BackendWeighted)
			if !reflect.DeepEqual(inc, ful) {
				t.Fatalf("%s query %d: incremental and fresh rankings diverge\n inc   %+v\n fresh %+v",
					step, qi, inc, ful)
			}
			if exh := ix.SearchExhaustive(q, 0, ssdeep.BackendWeighted); !reflect.DeepEqual(inc, exh) {
				t.Fatalf("%s query %d: incremental index disagrees with its own exhaustive scan", step, qi)
			}
		}
	}

	// Append-only growth within the slack: must splice, not rebuild.
	for i := 200; i < 240; i++ {
		records = append(records, sf.record(i))
	}
	prevBase := ix.Stats().Base
	ix = NewFingerprintIndexFrom(ix, records)
	if s := ix.Stats(); s.Base != prevBase || s.Extra == 0 {
		t.Fatalf("append splice stats = %+v, want base kept (%d) and extra populated", s, prevBase)
	}
	check("append-splice")

	// Replace some entries (same FILE_H, new content) and drop others:
	// tombstones appear, rankings still match a fresh build.
	replaced := 0
	kept := records[:0]
	for i, r := range records {
		switch i % 29 {
		case 0: // drop
		case 1: // replace content under the same FILE_H
			nr := *r
			nr.SymbolsH = sf.digest(3)
			nr.Exe = r.Exe + "-rebuilt"
			kept = append(kept, &nr)
			replaced++
		default:
			kept = append(kept, r)
		}
	}
	records = kept
	ix = NewFingerprintIndexFrom(ix, records)
	if s := ix.Stats(); s.Dead == 0 {
		t.Fatalf("replacement splice stats = %+v, want tombstones", s)
	}
	check("tombstone-splice")

	// Churn past a quarter of the base: the derivation must compact back to
	// a single base block and still rank identically.
	for i := 1000; i < 1000+prevBase/2; i++ {
		records = append(records, sf.record(i))
	}
	ix = NewFingerprintIndexFrom(ix, records)
	if s := ix.Stats(); s.Dead != 0 || s.Extra != 0 {
		t.Fatalf("post-compaction stats = %+v, want single base block", s)
	}
	check("compaction")

	// A FILE_H that vanished and later returns must be re-admitted even
	// though an earlier generation tombstoned it.
	victim := records[10]
	records = append(records[:10], records[11:]...)
	ix = NewFingerprintIndexFrom(ix, records)
	check("vanish")
	records = append(records, victim)
	ix = NewFingerprintIndexFrom(ix, records)
	check("return")
}

// TestSearchRankingIndependentOfConstruction pins the canonical total order:
// fully tied rows (same Avg, Label, Exe — different digests) sort the same
// whether the catalog was built fresh in record order or derived
// incrementally with a different internal layout.
func TestSearchRankingIndependentOfConstruction(t *testing.T) {
	shared, err := ssdeep.HashString(strings.Repeat("an executable body with plenty of shared structure ", 40))
	if err != nil {
		t.Fatal(err)
	}
	mk := func(i int, fileH string) *postprocess.ProcessRecord {
		return &postprocess.ProcessRecord{
			JobID: fmt.Sprintf("j%d", i), Category: "user",
			Exe:   "/appl/lammps/lmp", // identical Exe: ties on Label and Exe
			FileH: fileH, StringsH: shared,
		}
	}
	// Distinct FILE_H values, same everything else: rows tie on Avg, Label,
	// Exe, and all six scores; only the hidden FILE_H tiebreak orders them.
	r1 := mk(1, "3:aaaxyzb:t1")
	r2 := mk(2, "3:zzzxyzb:t2")
	fwd := NewFingerprintIndex([]*postprocess.ProcessRecord{r1, r2})
	rev := NewFingerprintIndex([]*postprocess.ProcessRecord{r2, r1})
	inc := NewFingerprintIndexFrom(fwd, []*postprocess.ProcessRecord{r2, r1})
	q := Digests{Strings: shared}
	want := fwd.Search(q, 0, ssdeep.BackendWeighted)
	if len(want) != 2 {
		t.Fatalf("want 2 tied rows, got %+v", want)
	}
	for name, ix := range map[string]*FingerprintIndex{"reversed": rev, "incremental": inc} {
		if got := ix.Search(q, 0, ssdeep.BackendWeighted); !reflect.DeepEqual(got, want) {
			t.Errorf("%s construction ranks differently:\n got  %+v\n want %+v", name, got, want)
		}
	}
}
