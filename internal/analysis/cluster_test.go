package analysis

import (
	"math/rand"
	"testing"

	"siren/internal/postprocess"
	"siren/internal/ssdeep"
	"siren/internal/toolchain"
)

// buildFamily compiles a family of related binaries plus one unrelated one
// and returns user records carrying their FILE_H.
func buildFamily(t *testing.T) []*postprocess.ProcessRecord {
	t.Helper()
	hashOf := func(src toolchain.Source, opts toolchain.BuildOptions) string {
		art, err := toolchain.Compile(src, opts)
		if err != nil {
			t.Fatal(err)
		}
		h, err := ssdeep.Hash(art.Binary)
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	icon := toolchain.Source{Name: "icon", Version: "2.6.4",
		Functions: []string{"icon_run", "icon_out"}, CodeKB: 48}
	gmx := toolchain.Source{Name: "gromacs", Version: "2024.1",
		Functions: []string{"gmx_mdrun"}, CodeKB: 48}

	var recs []*postprocess.ProcessRecord
	add := func(exe, fileH string, times int) {
		for i := 0; i < times; i++ {
			recs = append(recs, &postprocess.ProcessRecord{
				UID: 1001, JobID: "j", Exe: exe, Category: "user", FileH: fileH,
			})
		}
	}
	add("/scratch/p/icon/b0/icon", hashOf(icon, toolchain.BuildOptions{Compilers: []toolchain.Compiler{toolchain.GCCSUSE}}), 3)
	add("/scratch/p/icon/b1/icon", hashOf(icon, toolchain.BuildOptions{Compilers: []toolchain.Compiler{toolchain.ClangCray}}), 2)
	add("/scratch/p/run/a.out", hashOf(icon, toolchain.BuildOptions{Compilers: []toolchain.Compiler{toolchain.GCCSUSE}, Mutations: 40}), 1)
	add("/appl/gromacs/bin/gmx", hashOf(gmx, toolchain.BuildOptions{Compilers: []toolchain.Compiler{toolchain.LLDAMD}}), 4)
	return recs
}

func TestSimilarityClustersGroupFamilies(t *testing.T) {
	d := NewDataset(buildFamily(t))
	clusters := d.SimilarityClusters(50, ssdeep.BackendWeighted)
	if len(clusters) != 2 {
		t.Fatalf("clusters = %d, want 2 (icon family + gromacs)", len(clusters))
	}
	top := clusters[0]
	if len(top.Members) != 3 {
		t.Errorf("icon family members = %d, want 3 (two builds + a.out)", len(top.Members))
	}
	if top.DominantLabel() != "icon" {
		t.Errorf("dominant label = %s", top.DominantLabel())
	}
	// The unknown a.out was identified by clustering.
	foundUnknown := false
	for _, m := range top.Members {
		if DeriveLabel(m.Exe) == UnknownLabel {
			foundUnknown = true
		}
	}
	if !foundUnknown {
		t.Error("a.out not clustered with icon")
	}
	if top.Processes != 6 {
		t.Errorf("icon cluster processes = %d, want 6", top.Processes)
	}

	purity, n := ClusterPurity(clusters)
	if purity != 1.0 || n != 2 {
		t.Errorf("purity = %.2f over %d clusters", purity, n)
	}
}

func TestThreshold100IsExactIdentity(t *testing.T) {
	d := NewDataset(buildFamily(t))
	clusters := d.SimilarityClusters(100, ssdeep.BackendWeighted)
	// Four distinct binaries → four singleton clusters.
	if len(clusters) != 4 {
		t.Fatalf("clusters at threshold 100 = %d, want 4", len(clusters))
	}
	for _, c := range clusters {
		if len(c.Members) != 1 {
			t.Errorf("non-singleton at threshold 100: %+v", c.Labels)
		}
	}
}

func TestClusterPurityDetectsBadThreshold(t *testing.T) {
	// At threshold 1 with a shared compiler fingerprint everything might
	// merge; purity must then drop below 1 (icon and gromacs differ).
	d := NewDataset(buildFamily(t))
	clusters := d.SimilarityClusters(1, ssdeep.BackendWeighted)
	purity, _ := ClusterPurity(clusters)
	if len(clusters) == 1 && purity == 1.0 {
		t.Error("merging unrelated software must cost purity")
	}
}

func TestEmptyDatasetClusters(t *testing.T) {
	d := NewDataset(nil)
	if got := d.SimilarityClusters(60, ssdeep.BackendWeighted); len(got) != 0 {
		t.Errorf("clusters of empty dataset = %d", len(got))
	}
	purity, n := ClusterPurity(nil)
	if purity != 1 || n != 0 {
		t.Errorf("purity of nothing = %.2f/%d", purity, n)
	}
}

func TestPythonPackageUsers(t *testing.T) {
	d := NewDataset([]*postprocess.ProcessRecord{
		rec(1, "j1", "/usr/bin/python3.10", "python", withImports("numpy", "heapq")),
		rec(2, "j2", "/usr/bin/python3.10", "python", withImports("numpy")),
	})
	users := d.PythonPackageUsers()
	if got := users["numpy"]; len(got) != 2 || got[0] != "user_1" || got[1] != "user_2" {
		t.Errorf("numpy users = %q", got)
	}
	if got := users["heapq"]; len(got) != 1 {
		t.Errorf("heapq users = %q", got)
	}
}

func BenchmarkSimilarityClusters(b *testing.B) {
	// 60 binaries in 6 families of 10 variants each.
	rng := rand.New(rand.NewSource(1))
	var recs []*postprocess.ProcessRecord
	for fam := 0; fam < 6; fam++ {
		src := toolchain.Source{Name: string(rune('a'+fam)) + "app", Version: "1.0",
			Functions: []string{"main"}, CodeKB: 32}
		for v := 0; v < 10; v++ {
			art, err := toolchain.Compile(src, toolchain.BuildOptions{
				Compilers: []toolchain.Compiler{toolchain.GCCSUSE}, Mutations: v * 20})
			if err != nil {
				b.Fatal(err)
			}
			h, err := ssdeep.Hash(art.Binary)
			if err != nil {
				b.Fatal(err)
			}
			recs = append(recs, &postprocess.ProcessRecord{
				UID: 1000, JobID: "j", Category: "user",
				Exe:   "/users/u/" + src.Name + "/v" + string(rune('0'+v)),
				FileH: h,
			})
		}
	}
	_ = rng
	d := NewDataset(recs)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clusters := d.SimilarityClusters(55, ssdeep.BackendWeighted)
		if len(clusters) == 0 {
			b.Fatal("no clusters")
		}
	}
}
