// Edge cases of the two functions the identify endpoint leans on hardest:
// DeriveLabel (every query row's label) and scoreOrZero (every digest
// comparison — a malformed digest from a hostile or truncated request must
// score 0, never abort the search).
package analysis

import (
	"reflect"
	"testing"

	"siren/internal/postprocess"
	"siren/internal/ssdeep"
)

func TestDeriveLabelEdges(t *testing.T) {
	cases := []struct {
		exe, want string
	}{
		// Empty and degenerate paths.
		{"", UnknownLabel},
		{"/", UnknownLabel},
		{"a.out", UnknownLabel},
		// Trailing slash: the rule text still matches inside the path, and
		// the /lmp[^/]*$ anchor must NOT match when lmp is a directory.
		{"/appl/lammps/", "LAMMPS"},
		{"/appl/lmp/", UnknownLabel},
		{"/appl/lmp/tool", UnknownLabel},
		// Versioned suffixes on the final segment.
		{"/appl/bin/lmp_serial-2024.1", "LAMMPS"},
		{"/appl/bin/lmp", "LAMMPS"},
		{"/appl/gromacs-2023.3/bin/mdrun", "GROMACS"},
		{"/usr/bin/gzip-1.12", "gzip"},
		// Case-insensitive rules.
		{"/APPL/LAMMPS/BIN/LMP", "LAMMPS"},
		{"/scratch/GROMACS/gmx_mpi", "GROMACS"},
		// Basename prefix rules only anchor at the last segment.
		{"/data/lmpx", "LAMMPS"}, // last segment starts with lmp
		{"/data/xlmp", UnknownLabel},
		// First match wins: a path naming two rule substrings takes the
		// earlier rule.
		{"/appl/lammps/gromacs-compat/lmp", "LAMMPS"},
		// Substring rules fire anywhere in the path, including surprising
		// containments — pinned so a rule-ordering change is a conscious one.
		{"/appl/silicon/bin/tool", "icon"},
	}
	for _, c := range cases {
		if got := DeriveLabel(c.exe); got != c.want {
			t.Errorf("DeriveLabel(%q) = %q, want %q", c.exe, got, c.want)
		}
	}
}

func TestScoreOrZeroMalformed(t *testing.T) {
	valid, err := ssdeep.HashString("the quick brown fox jumps over the lazy dog, 400 times over, with feeling")
	if err != nil {
		t.Fatal(err)
	}
	zeroCases := []struct {
		name, a, b string
	}{
		{"both empty", "", ""},
		{"left empty", "", valid},
		{"right empty", valid, ""},
		{"no colons", "notadigest", valid},
		{"one part", "3:abcdef", valid},
		{"truncated after blocksize", "3:", valid},
		{"empty signatures", "3::", valid},
		{"non-numeric blocksize", "x:abc:def", valid},
		{"zero blocksize", "0:abc:def", valid},
		{"huge blocksize", "999999999999999999999:abc:def", valid},
		{"invalid base64 chars", "3:a|b:c~d", valid},
		{"malformed on the right", valid, "3:abc"},
	}
	for _, c := range zeroCases {
		for _, backend := range []ssdeep.Backend{ssdeep.BackendWeighted, ssdeep.BackendDamerau, ssdeep.BackendLevenshtein} {
			if got := scoreOrZero(c.a, c.b, backend); got != 0 {
				t.Errorf("scoreOrZero(%s, backend %v) = %d, want 0", c.name, backend, got)
			}
		}
	}
	if got := scoreOrZero(valid, valid, ssdeep.BackendWeighted); got != 100 {
		t.Errorf("scoreOrZero(self) = %d, want 100", got)
	}
}

// TestSearchSurvivesMalformedCatalogDigests pins the partial-data contract
// end to end: a fingerprint whose stored digests are truncated or corrupt
// still ranks by its remaining comparable characteristics instead of
// aborting or poisoning the search.
func TestSearchSurvivesMalformedCatalogDigests(t *testing.T) {
	good, err := ssdeep.HashString("a perfectly ordinary executable body with enough entropy to digest, repeated and varied 1 2 3 4 5 6 7 8 9")
	if err != nil {
		t.Fatal(err)
	}
	records := []*postprocess.ProcessRecord{
		{JobID: "1", Category: "user", Exe: "/appl/lammps/lmp", FileH: good, StringsH: "3:corrupted", ModulesH: "nonsense"},
		{JobID: "1", Category: "user", Exe: "/appl/gromacs/gmx", FileH: "truncated:", StringsH: ""},
	}
	ix := NewFingerprintIndex(records)
	if ix.Len() != 2 {
		t.Fatalf("index len = %d, want 2 (malformed digests still catalogued)", ix.Len())
	}
	rows := ix.Search(Digests{File: good, Strings: good, Modules: good}, 0, ssdeep.BackendWeighted)
	if len(rows) != 1 {
		t.Fatalf("rows = %+v, want exactly the FILE_H match", rows)
	}
	if rows[0].Label != "LAMMPS" || rows[0].FileS != 100 || rows[0].StringsS != 0 || rows[0].ModulesS != 0 {
		t.Errorf("malformed-digest row scored wrong: %+v", rows[0])
	}
}

// TestOneMalformedDigestScoresOtherFive pins the per-characteristic
// independence of the indexed search: an entry carrying exactly one
// malformed digest still scores nonzero on all five valid ones — parse
// failure is confined to its characteristic, for indexing and scoring alike.
func TestOneMalformedDigestScoresOtherFive(t *testing.T) {
	h := func(body string) string {
		d, err := ssdeep.HashString("shared characteristic body for " + body +
			" with enough repeated and varied structure to digest 0 1 2 3 4 5 6 7 8 9")
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	rec := &postprocess.ProcessRecord{
		JobID: "1", Category: "user", Exe: "/appl/lammps/lmp",
		FileH:    h("file"),
		ModulesH: h("modules"),
		ObjectsH: h("objects"),
		StringsH: h("strings"),
		SymbolsH: h("symbols"),
		// The sixth characteristic is corrupt — signature bytes truncated away.
		CompilersH: "1536:::::garbage",
	}
	ix := NewFingerprintIndex([]*postprocess.ProcessRecord{rec})
	q := Digests{
		File: h("file"), Modules: h("modules"), Objects: h("objects"),
		Strings: h("strings"), Symbols: h("symbols"), Compilers: h("compilers"),
	}
	rows := ix.Search(q, 0, ssdeep.BackendWeighted)
	if len(rows) != 1 {
		t.Fatalf("rows = %+v, want the one entry", rows)
	}
	r := rows[0]
	for name, score := range map[string]int{
		"File": r.FileS, "Modules": r.ModulesS, "Objects": r.ObjectsS,
		"Strings": r.StringsS, "Symbols": r.SymbolsS,
	} {
		if score == 0 {
			t.Errorf("%s scored 0, want >0 (malformed CompilersH must not poison it)", name)
		}
	}
	if r.CompilersS != 0 {
		t.Errorf("CompilersS = %d, want 0 (malformed stored digest)", r.CompilersS)
	}
	if exh := ix.SearchExhaustive(q, 0, ssdeep.BackendWeighted); !reflect.DeepEqual(rows, exh) {
		t.Errorf("indexed and exhaustive disagree on the partially-malformed entry")
	}
}
