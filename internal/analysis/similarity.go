package analysis

import (
	"sort"

	"siren/internal/postprocess"
	"siren/internal/ssdeep"
)

// SimilarityRow is one Table 7 row: the six per-characteristic fuzzy-hash
// scores of a known executable against the unknown baseline, plus their
// average.
type SimilarityRow struct {
	Label      string
	Exe        string
	Avg        float64
	ModulesS   int // MO_H
	CompilersS int // CO_H
	ObjectsS   int // OB_H
	FileS      int // FI_H
	StringsS   int // ST_H
	SymbolsS   int // SY_H
}

// scoreOrZero compares two digests, returning 0 for empty or malformed
// digests (missing information must not abort the search — SIREN hashes the
// lists precisely so that partial data stays comparable).
func scoreOrZero(a, b string, backend ssdeep.Backend) int {
	if a == "" || b == "" {
		return 0
	}
	s, err := ssdeep.CompareWith(a, b, backend)
	if err != nil {
		return 0
	}
	return s
}

// SimilaritySearch computes Table 7: it ranks every *known* (labelled) user
// executable by average fuzzy-hash similarity to the baseline record across
// the six characteristics (modules, compilers, objects, file, strings,
// symbols). Executables are deduplicated by FILE_H so each distinct binary
// appears once. topN <= 0 returns all rows with Avg > 0.
func (d *Dataset) SimilaritySearch(baseline *postprocess.ProcessRecord, topN int, backend ssdeep.Backend) []SimilarityRow {
	seen := make(map[string]bool)
	var rows []SimilarityRow
	for _, r := range d.Records {
		if r.Category != "user" || r.FileH == "" || seen[r.FileH] {
			continue
		}
		label := DeriveLabel(r.Exe)
		if label == UnknownLabel {
			continue // rank only known instances against the unknown
		}
		seen[r.FileH] = true
		row := SimilarityRow{
			Label:      label,
			Exe:        r.Exe,
			ModulesS:   scoreOrZero(baseline.ModulesH, r.ModulesH, backend),
			CompilersS: scoreOrZero(baseline.CompilersH, r.CompilersH, backend),
			ObjectsS:   scoreOrZero(baseline.ObjectsH, r.ObjectsH, backend),
			FileS:      scoreOrZero(baseline.FileH, r.FileH, backend),
			StringsS:   scoreOrZero(baseline.StringsH, r.StringsH, backend),
			SymbolsS:   scoreOrZero(baseline.SymbolsH, r.SymbolsH, backend),
		}
		row.Avg = float64(row.ModulesS+row.CompilersS+row.ObjectsS+row.FileS+row.StringsS+row.SymbolsS) / 6
		if row.Avg > 0 {
			rows = append(rows, row)
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Avg != rows[j].Avg {
			return rows[i].Avg > rows[j].Avg
		}
		if rows[i].Label != rows[j].Label {
			return rows[i].Label < rows[j].Label
		}
		return rows[i].Exe < rows[j].Exe
	})
	if topN > 0 && len(rows) > topN {
		rows = rows[:topN]
	}
	return rows
}

// FindUnknown returns the first user-category record whose derived label is
// UNKNOWN and that carries a FILE_H — the Table 7 baseline.
func (d *Dataset) FindUnknown() (*postprocess.ProcessRecord, bool) {
	for _, r := range d.Records {
		if r.Category == "user" && r.FileH != "" && DeriveLabel(r.Exe) == UnknownLabel {
			return r, true
		}
	}
	return nil, false
}

// IdentifyByHash ranks known executables against an arbitrary single digest
// (FILE_H only) — the simpler identification mode used by the quickstart
// example and the exact-vs-fuzzy ablation.
func (d *Dataset) IdentifyByHash(fileH string, topN int, backend ssdeep.Backend) []SimilarityRow {
	seen := make(map[string]bool)
	var rows []SimilarityRow
	for _, r := range d.Records {
		if r.Category != "user" || r.FileH == "" || seen[r.FileH] {
			continue
		}
		seen[r.FileH] = true
		s := scoreOrZero(fileH, r.FileH, backend)
		if s == 0 {
			continue
		}
		rows = append(rows, SimilarityRow{Label: DeriveLabel(r.Exe), Exe: r.Exe, FileS: s, Avg: float64(s)})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Avg != rows[j].Avg {
			return rows[i].Avg > rows[j].Avg
		}
		return rows[i].Exe < rows[j].Exe
	})
	if topN > 0 && len(rows) > topN {
		rows = rows[:topN]
	}
	return rows
}
