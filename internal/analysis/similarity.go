package analysis

import (
	"slices"
	"sync"

	"siren/internal/postprocess"
	"siren/internal/ssdeep"
)

// SimilarityRow is one Table 7 row: the six per-characteristic fuzzy-hash
// scores of a known executable against the unknown baseline, plus their
// average.
type SimilarityRow struct {
	Label      string
	Exe        string
	Avg        float64
	ModulesS   int // MO_H
	CompilersS int // CO_H
	ObjectsS   int // OB_H
	FileS      int // FI_H
	StringsS   int // ST_H
	SymbolsS   int // SY_H

	// file is the catalog entry's FILE_H — unique per entry — carried as the
	// final ranking tiebreak so a ranking is a total order independent of
	// catalog construction order (fresh, incremental, or indexed builds of
	// the same catalog sort identically).
	file string
}

// numChars is the number of fingerprint characteristics (the six fuzzy
// hashes of the wire schema).
const numChars = 6

// Digests is a query against the fingerprint index: the six characteristic
// fuzzy hashes of an executable, any subset of which may be empty. It is
// what a SIREN identify request carries — no process context, just the
// hashes a scanner computed from an unknown binary.
type Digests struct {
	Modules   string // MO_H
	Compilers string // CO_H
	Objects   string // OB_H
	File      string // FI_H
	Strings   string // ST_H
	Symbols   string // SY_H
}

// RecordDigests extracts a record's six characteristic digests — the query
// the offline Table 7 search issues for its unknown baseline record.
func RecordDigests(r *postprocess.ProcessRecord) Digests {
	return Digests{
		Modules:   r.ModulesH,
		Compilers: r.CompilersH,
		Objects:   r.ObjectsH,
		File:      r.FileH,
		Strings:   r.StringsH,
		Symbols:   r.SymbolsH,
	}
}

// Empty reports whether no characteristic digest is set.
func (q Digests) Empty() bool {
	return q == Digests{}
}

// array lists the digests in canonical characteristic order (the order of
// the SimilarityRow score columns).
func (q Digests) array() [numChars]string {
	return [numChars]string{q.Modules, q.Compilers, q.Objects, q.File, q.Strings, q.Symbols}
}

// Fingerprint is one catalog entry of the index: a known (labelled) user
// executable's six characteristic digests.
type Fingerprint struct {
	Label     string
	Exe       string
	Modules   string
	Compilers string
	Objects   string
	File      string
	Strings   string
	Symbols   string
}

// preparedChar is one characteristic digest parsed and clamped once at
// construction; ok is false for empty or malformed digests, which score 0
// against everything without aborting the entry's other characteristics.
type preparedChar struct {
	p  ssdeep.PreparedDigest
	ok bool
}

// fpEntry is one catalog entry with its parse-once comparison state.
type fpEntry struct {
	fp    Fingerprint
	rec   *postprocess.ProcessRecord // source record: fast identity check on carry
	chars [numChars]preparedChar
}

// fpBlock is an immutable slab of entries plus their per-characteristic
// candidate indexes. Ids inside the indexes are global FingerprintIndex ids
// (block-local position plus the block's id offset).
type fpBlock struct {
	fps []fpEntry
	idx [numChars]*ssdeep.Index
}

func buildBlock(entries []fpEntry, idBase int32) *fpBlock {
	b := &fpBlock{fps: entries}
	for c := range b.idx {
		b.idx[c] = ssdeep.NewIndex()
	}
	for i := range entries {
		id := idBase + int32(i)
		for c := range entries[i].chars {
			if entries[i].chars[c].ok {
				b.idx[c].Add(id, entries[i].chars[c].p)
			}
		}
	}
	return b
}

// FingerprintIndex is the labelled fingerprint catalog a similarity search
// ranks against: one entry per distinct known user binary, deduplicated by
// FILE_H. Both recognition paths are built on it — the offline Table 7
// search (Dataset.SimilaritySearch) constructs one per call, and the online
// identify endpoint keeps one per catalog generation — so the ranking math
// exists exactly once. The index is immutable after construction and safe
// for concurrent Search calls.
//
// Search is index-bound, not catalog-size-bound: each characteristic keeps a
// block-size-bucketed, gram-inverted ssdeep.Index (DESIGN.md §9), so scoring
// touches only entries that share at least one 7-gram with the query — every
// other entry provably scores zero under the ssdeep common-substring
// precondition. SearchExhaustive retains the full linear scan; both produce
// identical rankings.
//
// The entry population is split into an immutable base block — shared, never
// copied, across the generations NewFingerprintIndexFrom derives — plus a
// small per-generation extra block and a tombstone set over base ids, so an
// incremental catalog refresh splices new fingerprints in without re-parsing
// or re-posting the unchanged ones.
type FingerprintIndex struct {
	base  *fpBlock // shared across derived generations; ids [0, len(base.fps))
	dead  []bool   // tombstoned base ids; nil when none
	deadN int
	extra *fpBlock // this index's own appendix; ids offset by len(base.fps)
}

// IndexStats describe the physical shape of the index.
type IndexStats struct {
	Base  int // entries in the shared base block (tombstoned included)
	Dead  int // tombstoned base entries
	Extra int // entries in this generation's extra block
}

// candPool recycles candidate-set scratch across Search calls (all indexes
// share it; mark tables size to the largest live catalog).
var candPool = sync.Pool{New: func() any { return new(ssdeep.CandidateSet) }}

// selected is one fingerprint chosen from a record list, pre-labelling.
type selected struct {
	rec   *postprocess.ProcessRecord
	label string
}

// selectFingerprints applies the catalog admission rule, in record order:
// user-category records carrying a FILE_H, deduplicated by FILE_H (first
// labelled occurrence wins), excluding UNKNOWN-labelled executables — the
// search ranks only known instances against the unknown. An
// UNKNOWN-labelled record does not claim its FILE_H: a later labelled
// record sharing the binary still enters the index.
func selectFingerprints(records []*postprocess.ProcessRecord) []selected {
	var out []selected
	seen := make(map[string]bool)
	for _, r := range records {
		if r.Category != "user" || r.FileH == "" || seen[r.FileH] {
			continue
		}
		label := DeriveLabel(r.Exe)
		if label == UnknownLabel {
			continue
		}
		seen[r.FileH] = true
		out = append(out, selected{rec: r, label: label})
	}
	return out
}

// prepareEntry parses and clamps a selected record's six digests once —
// queries never re-parse catalog digests.
func prepareEntry(s selected) fpEntry {
	r := s.rec
	e := fpEntry{
		fp: Fingerprint{
			Label:     s.label,
			Exe:       r.Exe,
			Modules:   r.ModulesH,
			Compilers: r.CompilersH,
			Objects:   r.ObjectsH,
			File:      r.FileH,
			Strings:   r.StringsH,
			Symbols:   r.SymbolsH,
		},
		rec: r,
	}
	for c, d := range RecordDigests(r).array() {
		if d == "" {
			continue
		}
		if p, err := ssdeep.ParsePrepared(d); err == nil {
			e.chars[c] = preparedChar{p: p, ok: true}
		}
	}
	return e
}

// sameEntry reports whether a catalogued entry and a selected record carry
// the same fingerprint content. The record-pointer fast path covers jobs the
// catalog carried forward unchanged; re-consolidated jobs produce new record
// pointers and fall back to comparing the digest strings and Exe (the label
// is derived from Exe, so equal Exe implies equal label).
func sameEntry(e *fpEntry, s selected) bool {
	if e.rec == s.rec {
		return true
	}
	r := s.rec
	return e.fp.Exe == r.Exe &&
		e.fp.Modules == r.ModulesH &&
		e.fp.Compilers == r.CompilersH &&
		e.fp.Objects == r.ObjectsH &&
		e.fp.File == r.FileH &&
		e.fp.Strings == r.StringsH &&
		e.fp.Symbols == r.SymbolsH
}

// NewFingerprintIndex builds the index from consolidated records.
func NewFingerprintIndex(records []*postprocess.ProcessRecord) *FingerprintIndex {
	return NewFingerprintIndexFrom(nil, records)
}

// NewFingerprintIndexFrom builds the index for records, reusing prev (an
// index over an earlier revision of the same catalog, typically the previous
// generation's) where possible: fingerprints whose content is unchanged keep
// their parsed digests and — for base-block entries — their posting lists,
// vanished or altered fingerprints are tombstoned, and new ones are indexed
// into a fresh extra block. When the accumulated churn (tombstones + extra)
// crosses a quarter of the base, everything is compacted into a new base
// block (still reusing parsed digests). prev is never modified; with prev ==
// nil this is a full build. The resulting index ranks identically to a full
// build over the same records.
func NewFingerprintIndexFrom(prev *FingerprintIndex, records []*postprocess.ProcessRecord) *FingerprintIndex {
	sel := selectFingerprints(records)
	if prev != nil {
		if ix, ok := prev.splice(sel); ok {
			return ix
		}
	}
	return buildFull(prev, sel)
}

// compactionSlack is the churn budget before a derived index is rebuilt into
// a single base block: tombstones plus extra entries may reach a quarter of
// the base (but always at least compactionSlack, so small catalogs are not
// rebuilt on every refresh).
const compactionSlack = 64

// splice derives an index for sel from prev without touching prev's base
// postings. ok is false when churn crossed the compaction threshold and the
// caller should rebuild.
func (ix *FingerprintIndex) splice(sel []selected) (*FingerprintIndex, bool) {
	bySel := make(map[string]int, len(sel))
	for i := range sel {
		bySel[sel[i].rec.FileH] = i
	}
	taken := make([]bool, len(sel))

	next := &FingerprintIndex{base: ix.base, dead: ix.dead, deadN: ix.deadN}
	baseN := len(ix.base.fps)
	copied := false
	for id := range ix.base.fps {
		if ix.dead != nil && ix.dead[id] {
			continue
		}
		e := &ix.base.fps[id]
		if si, ok := bySel[e.fp.File]; ok && sameEntry(e, sel[si]) {
			taken[si] = true
			continue
		}
		// Vanished or replaced: tombstone (copy-on-write — prev's slice is
		// shared with live queries on older generations).
		if !copied {
			next.dead = make([]bool, baseN)
			copy(next.dead, ix.dead)
			copied = true
		}
		next.dead[id] = true
		next.deadN++
	}

	// Carried extra entries keep their parsed state but are re-posted into
	// this generation's extra block (extra indexes are never shared, so they
	// can be rebuilt compactly each time).
	var entries []fpEntry
	for i := range ix.extra.fps {
		e := &ix.extra.fps[i]
		if si, ok := bySel[e.fp.File]; ok && sameEntry(e, sel[si]) {
			taken[si] = true
			entries = append(entries, *e)
		}
	}
	for i := range sel {
		if !taken[i] {
			entries = append(entries, prepareEntry(sel[i]))
		}
	}

	if next.deadN+len(entries) > max(compactionSlack, baseN/4) {
		return nil, false
	}
	next.extra = buildBlock(entries, int32(baseN))
	return next, true
}

// buildFull constructs a single-base index over sel, reusing prev's parsed
// entries for unchanged fingerprints when prev is given.
func buildFull(prev *FingerprintIndex, sel []selected) *FingerprintIndex {
	var reuse map[string]*fpEntry
	if prev != nil {
		reuse = make(map[string]*fpEntry, prev.Len())
		prev.eachLive(func(e *fpEntry) {
			reuse[e.fp.File] = e
		})
	}
	entries := make([]fpEntry, 0, len(sel))
	for _, s := range sel {
		if e, ok := reuse[s.rec.FileH]; ok && sameEntry(e, s) {
			entries = append(entries, *e)
		} else {
			entries = append(entries, prepareEntry(s))
		}
	}
	return &FingerprintIndex{
		base:  buildBlock(entries, 0),
		extra: buildBlock(nil, int32(len(entries))),
	}
}

// eachLive visits every live entry in id order.
func (ix *FingerprintIndex) eachLive(fn func(e *fpEntry)) {
	for id := range ix.base.fps {
		if ix.dead == nil || !ix.dead[id] {
			fn(&ix.base.fps[id])
		}
	}
	for i := range ix.extra.fps {
		fn(&ix.extra.fps[i])
	}
}

// Len reports the number of distinct live fingerprints in the index.
func (ix *FingerprintIndex) Len() int {
	return len(ix.base.fps) - ix.deadN + len(ix.extra.fps)
}

// Stats reports the physical block shape (base/tombstones/extra) — how much
// of the index the last derivation carried versus rebuilt.
func (ix *FingerprintIndex) Stats() IndexStats {
	return IndexStats{Base: len(ix.base.fps), Dead: ix.deadN, Extra: len(ix.extra.fps)}
}

// numIDs is the id-space size (live and tombstoned).
func (ix *FingerprintIndex) numIDs() int {
	return len(ix.base.fps) + len(ix.extra.fps)
}

func (ix *FingerprintIndex) entryAt(id int32) *fpEntry {
	if n := int32(len(ix.base.fps)); id < n {
		return &ix.base.fps[id]
	}
	return &ix.extra.fps[int(id)-len(ix.base.fps)]
}

func (ix *FingerprintIndex) live(id int32) bool {
	return int(id) >= len(ix.base.fps) || ix.dead == nil || !ix.dead[id]
}

// prepareQuery parses the six query digests once. ok is false for empty or
// malformed digests (they score 0 against everything — missing information
// must not abort the search; SIREN hashes the lists precisely so that
// partial data stays comparable).
func prepareQuery(q Digests) (qp [numChars]preparedChar, any bool) {
	for c, d := range q.array() {
		if d == "" {
			continue
		}
		if p, err := ssdeep.ParsePrepared(d); err == nil {
			qp[c] = preparedChar{p: p, ok: true}
			any = true
		}
	}
	return qp, any
}

// scoreEntry computes one entry's Table 7 row against a prepared query; ok
// is false when every characteristic scored zero (the row is dropped).
func scoreEntry(e *fpEntry, qp *[numChars]preparedChar, backend ssdeep.Backend) (SimilarityRow, bool) {
	var s [numChars]int
	total := 0
	for c := range s {
		if qp[c].ok && e.chars[c].ok {
			s[c] = ssdeep.ComparePrepared(qp[c].p, e.chars[c].p, backend)
			total += s[c]
		}
	}
	if total == 0 {
		return SimilarityRow{}, false
	}
	return SimilarityRow{
		Label:      e.fp.Label,
		Exe:        e.fp.Exe,
		Avg:        float64(total) / numChars,
		ModulesS:   s[0],
		CompilersS: s[1],
		ObjectsS:   s[2],
		FileS:      s[3],
		StringsS:   s[4],
		SymbolsS:   s[5],
		file:       e.fp.File,
	}, true
}

// cmpRows is the canonical ranking order: Avg descending, then Label, Exe,
// the six scores (descending, column order), and finally the entry's unique
// FILE_H — a total order, so rankings are independent of construction and
// candidate-collection order.
func cmpRows(a, b SimilarityRow) int {
	switch {
	case a.Avg > b.Avg:
		return -1
	case a.Avg < b.Avg:
		return 1
	case a.Label != b.Label:
		if a.Label < b.Label {
			return -1
		}
		return 1
	case a.Exe != b.Exe:
		if a.Exe < b.Exe {
			return -1
		}
		return 1
	}
	as := [numChars]int{a.ModulesS, a.CompilersS, a.ObjectsS, a.FileS, a.StringsS, a.SymbolsS}
	bs := [numChars]int{b.ModulesS, b.CompilersS, b.ObjectsS, b.FileS, b.StringsS, b.SymbolsS}
	for c := range as {
		if as[c] != bs[c] {
			if as[c] > bs[c] {
				return -1
			}
			return 1
		}
	}
	switch {
	case a.file < b.file:
		return -1
	case a.file > b.file:
		return 1
	}
	return 0
}

func finishRows(rows []SimilarityRow, topN int) []SimilarityRow {
	if len(rows) == 0 {
		return nil // canonical no-match result, whatever capacity was reserved
	}
	slices.SortFunc(rows, cmpRows)
	if topN > 0 && len(rows) > topN {
		rows = rows[:topN]
	}
	return rows
}

// Search ranks fingerprints by average fuzzy-hash similarity to the query
// across the six characteristics — the Table 7 computation. Rows with
// Avg == 0 are dropped; rows sort by Avg desc, then Label, then Exe (full
// tiebreak in cmpRows). topN <= 0 returns all matching rows.
//
// Only indexed candidates are scored: per characteristic, the entries
// sharing a block-size bucket and at least one signature 7-gram with the
// query (plus exact signature matches), unioned across the six
// characteristics. Every non-candidate scores zero on all six digests, so
// the result is byte-identical to SearchExhaustive.
func (ix *FingerprintIndex) Search(q Digests, topN int, backend ssdeep.Backend) []SimilarityRow {
	qp, any := prepareQuery(q)
	if !any {
		return nil
	}
	set := candPool.Get().(*ssdeep.CandidateSet)
	set.Reset(ix.numIDs())
	for c := range qp {
		if !qp[c].ok {
			continue
		}
		ix.base.idx[c].Candidates(qp[c].p, set)
		ix.extra.idx[c].Candidates(qp[c].p, set)
	}
	slices.Sort(set.IDs) // deterministic scoring order (and cache-friendly)
	rows := make([]SimilarityRow, 0, len(set.IDs))
	for _, id := range set.IDs {
		if !ix.live(id) {
			continue
		}
		if row, ok := scoreEntry(ix.entryAt(id), &qp, backend); ok {
			rows = append(rows, row)
		}
	}
	candPool.Put(set)
	return finishRows(rows, topN)
}

// SearchExhaustive is Search without candidate pruning: it scores every live
// entry. Retained as the oracle for the index-equivalence tests and as the
// scaling baseline BenchmarkIdentify measures the index against.
func (ix *FingerprintIndex) SearchExhaustive(q Digests, topN int, backend ssdeep.Backend) []SimilarityRow {
	qp, any := prepareQuery(q)
	if !any {
		return nil
	}
	var rows []SimilarityRow
	ix.eachLive(func(e *fpEntry) {
		if row, ok := scoreEntry(e, &qp, backend); ok {
			rows = append(rows, row)
		}
	})
	return finishRows(rows, topN)
}

// scoreOrZero compares two digests, returning 0 for empty or malformed
// digests (missing information must not abort the search — SIREN hashes the
// lists precisely so that partial data stays comparable).
func scoreOrZero(a, b string, backend ssdeep.Backend) int {
	if a == "" || b == "" {
		return 0
	}
	s, err := ssdeep.CompareWith(a, b, backend)
	if err != nil {
		return 0
	}
	return s
}

// SimilaritySearch computes Table 7: it ranks every *known* (labelled) user
// executable by average fuzzy-hash similarity to the baseline record across
// the six characteristics (modules, compilers, objects, file, strings,
// symbols). Executables are deduplicated by FILE_H so each distinct binary
// appears once. topN <= 0 returns all rows with Avg > 0.
//
// This is the one-shot offline form of the shared implementation: it builds
// a FingerprintIndex over the dataset and queries it with the baseline's
// digests — byte-identical ranking to the online identify endpoint serving
// a catalog generation of the same records.
func (d *Dataset) SimilaritySearch(baseline *postprocess.ProcessRecord, topN int, backend ssdeep.Backend) []SimilarityRow {
	return NewFingerprintIndex(d.Records).Search(RecordDigests(baseline), topN, backend)
}

// FindUnknown returns the first user-category record whose derived label is
// UNKNOWN and that carries a FILE_H — the Table 7 baseline.
func (d *Dataset) FindUnknown() (*postprocess.ProcessRecord, bool) {
	for _, r := range d.Records {
		if r.Category == "user" && r.FileH != "" && DeriveLabel(r.Exe) == UnknownLabel {
			return r, true
		}
	}
	return nil, false
}

// IdentifyByHash ranks known executables against an arbitrary single digest
// (FILE_H only) — the simpler identification mode used by the quickstart
// example and the exact-vs-fuzzy ablation.
func (d *Dataset) IdentifyByHash(fileH string, topN int, backend ssdeep.Backend) []SimilarityRow {
	seen := make(map[string]bool)
	var rows []SimilarityRow
	for _, r := range d.Records {
		if r.Category != "user" || r.FileH == "" || seen[r.FileH] {
			continue
		}
		seen[r.FileH] = true
		s := scoreOrZero(fileH, r.FileH, backend)
		if s == 0 {
			continue
		}
		rows = append(rows, SimilarityRow{Label: DeriveLabel(r.Exe), Exe: r.Exe, FileS: s, Avg: float64(s), file: r.FileH})
	}
	slices.SortFunc(rows, func(a, b SimilarityRow) int {
		switch {
		case a.Avg > b.Avg:
			return -1
		case a.Avg < b.Avg:
			return 1
		case a.Exe != b.Exe:
			if a.Exe < b.Exe {
				return -1
			}
			return 1
		case a.file < b.file:
			return -1
		case a.file > b.file:
			return 1
		}
		return 0
	})
	if topN > 0 && len(rows) > topN {
		rows = rows[:topN]
	}
	return rows
}
