package analysis

import (
	"sort"

	"siren/internal/postprocess"
	"siren/internal/ssdeep"
)

// SimilarityRow is one Table 7 row: the six per-characteristic fuzzy-hash
// scores of a known executable against the unknown baseline, plus their
// average.
type SimilarityRow struct {
	Label      string
	Exe        string
	Avg        float64
	ModulesS   int // MO_H
	CompilersS int // CO_H
	ObjectsS   int // OB_H
	FileS      int // FI_H
	StringsS   int // ST_H
	SymbolsS   int // SY_H
}

// Digests is a query against the fingerprint index: the six characteristic
// fuzzy hashes of an executable, any subset of which may be empty. It is
// what a SIREN identify request carries — no process context, just the
// hashes a scanner computed from an unknown binary.
type Digests struct {
	Modules   string // MO_H
	Compilers string // CO_H
	Objects   string // OB_H
	File      string // FI_H
	Strings   string // ST_H
	Symbols   string // SY_H
}

// RecordDigests extracts a record's six characteristic digests — the query
// the offline Table 7 search issues for its unknown baseline record.
func RecordDigests(r *postprocess.ProcessRecord) Digests {
	return Digests{
		Modules:   r.ModulesH,
		Compilers: r.CompilersH,
		Objects:   r.ObjectsH,
		File:      r.FileH,
		Strings:   r.StringsH,
		Symbols:   r.SymbolsH,
	}
}

// Empty reports whether no characteristic digest is set.
func (q Digests) Empty() bool {
	return q == Digests{}
}

// Fingerprint is one catalog entry of the index: a known (labelled) user
// executable's six characteristic digests.
type Fingerprint struct {
	Label     string
	Exe       string
	Modules   string
	Compilers string
	Objects   string
	File      string
	Strings   string
	Symbols   string
}

// FingerprintIndex is the labelled fingerprint catalog a similarity search
// ranks against: one entry per distinct known user binary, deduplicated by
// FILE_H. Both recognition paths are built on it — the offline Table 7
// search (Dataset.SimilaritySearch) constructs one per call, and the online
// identify endpoint keeps one per catalog generation — so the ranking math
// exists exactly once. The index is immutable after construction and safe
// for concurrent Search calls.
type FingerprintIndex struct {
	fps []Fingerprint
}

// NewFingerprintIndex builds the index from consolidated records, in record
// order: user-category records carrying a FILE_H, deduplicated by FILE_H
// (first labelled occurrence wins), excluding UNKNOWN-labelled executables —
// the search ranks only known instances against the unknown. An
// UNKNOWN-labelled record does not claim its FILE_H: a later labelled record
// sharing the binary still enters the index, exactly as the original
// SimilaritySearch iteration behaved.
func NewFingerprintIndex(records []*postprocess.ProcessRecord) *FingerprintIndex {
	ix := &FingerprintIndex{}
	seen := make(map[string]bool)
	for _, r := range records {
		if r.Category != "user" || r.FileH == "" || seen[r.FileH] {
			continue
		}
		label := DeriveLabel(r.Exe)
		if label == UnknownLabel {
			continue
		}
		seen[r.FileH] = true
		ix.fps = append(ix.fps, Fingerprint{
			Label:     label,
			Exe:       r.Exe,
			Modules:   r.ModulesH,
			Compilers: r.CompilersH,
			Objects:   r.ObjectsH,
			File:      r.FileH,
			Strings:   r.StringsH,
			Symbols:   r.SymbolsH,
		})
	}
	return ix
}

// Len reports the number of distinct fingerprints in the index.
func (ix *FingerprintIndex) Len() int { return len(ix.fps) }

// Search ranks every fingerprint by average fuzzy-hash similarity to the
// query across the six characteristics — the Table 7 computation. Rows with
// Avg == 0 are dropped; rows sort by Avg desc, then Label, then Exe. topN <=
// 0 returns all matching rows.
func (ix *FingerprintIndex) Search(q Digests, topN int, backend ssdeep.Backend) []SimilarityRow {
	var rows []SimilarityRow
	for i := range ix.fps {
		fp := &ix.fps[i]
		row := SimilarityRow{
			Label:      fp.Label,
			Exe:        fp.Exe,
			ModulesS:   scoreOrZero(q.Modules, fp.Modules, backend),
			CompilersS: scoreOrZero(q.Compilers, fp.Compilers, backend),
			ObjectsS:   scoreOrZero(q.Objects, fp.Objects, backend),
			FileS:      scoreOrZero(q.File, fp.File, backend),
			StringsS:   scoreOrZero(q.Strings, fp.Strings, backend),
			SymbolsS:   scoreOrZero(q.Symbols, fp.Symbols, backend),
		}
		row.Avg = float64(row.ModulesS+row.CompilersS+row.ObjectsS+row.FileS+row.StringsS+row.SymbolsS) / 6
		if row.Avg > 0 {
			rows = append(rows, row)
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Avg != rows[j].Avg {
			return rows[i].Avg > rows[j].Avg
		}
		if rows[i].Label != rows[j].Label {
			return rows[i].Label < rows[j].Label
		}
		return rows[i].Exe < rows[j].Exe
	})
	if topN > 0 && len(rows) > topN {
		rows = rows[:topN]
	}
	return rows
}

// scoreOrZero compares two digests, returning 0 for empty or malformed
// digests (missing information must not abort the search — SIREN hashes the
// lists precisely so that partial data stays comparable).
func scoreOrZero(a, b string, backend ssdeep.Backend) int {
	if a == "" || b == "" {
		return 0
	}
	s, err := ssdeep.CompareWith(a, b, backend)
	if err != nil {
		return 0
	}
	return s
}

// SimilaritySearch computes Table 7: it ranks every *known* (labelled) user
// executable by average fuzzy-hash similarity to the baseline record across
// the six characteristics (modules, compilers, objects, file, strings,
// symbols). Executables are deduplicated by FILE_H so each distinct binary
// appears once. topN <= 0 returns all rows with Avg > 0.
//
// This is the one-shot offline form of the shared implementation: it builds
// a FingerprintIndex over the dataset and queries it with the baseline's
// digests — byte-identical ranking to the online identify endpoint serving
// a catalog generation of the same records.
func (d *Dataset) SimilaritySearch(baseline *postprocess.ProcessRecord, topN int, backend ssdeep.Backend) []SimilarityRow {
	return NewFingerprintIndex(d.Records).Search(RecordDigests(baseline), topN, backend)
}

// FindUnknown returns the first user-category record whose derived label is
// UNKNOWN and that carries a FILE_H — the Table 7 baseline.
func (d *Dataset) FindUnknown() (*postprocess.ProcessRecord, bool) {
	for _, r := range d.Records {
		if r.Category == "user" && r.FileH != "" && DeriveLabel(r.Exe) == UnknownLabel {
			return r, true
		}
	}
	return nil, false
}

// IdentifyByHash ranks known executables against an arbitrary single digest
// (FILE_H only) — the simpler identification mode used by the quickstart
// example and the exact-vs-fuzzy ablation.
func (d *Dataset) IdentifyByHash(fileH string, topN int, backend ssdeep.Backend) []SimilarityRow {
	seen := make(map[string]bool)
	var rows []SimilarityRow
	for _, r := range d.Records {
		if r.Category != "user" || r.FileH == "" || seen[r.FileH] {
			continue
		}
		seen[r.FileH] = true
		s := scoreOrZero(fileH, r.FileH, backend)
		if s == 0 {
			continue
		}
		rows = append(rows, SimilarityRow{Label: DeriveLabel(r.Exe), Exe: r.Exe, FileS: s, Avg: float64(s)})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Avg != rows[j].Avg {
			return rows[i].Avg > rows[j].Avg
		}
		return rows[i].Exe < rows[j].Exe
	})
	if topN > 0 && len(rows) > topN {
		rows = rows[:topN]
	}
	return rows
}
