package lmod

import (
	"errors"
	"reflect"
	"strings"
	"testing"
)

func testSystem() *System {
	s := NewSystem()
	s.Add(Module{Name: "craype/2.7.30", Setenv: map[string]string{"CRAYPE_VERSION": "2.7.30"}})
	s.Add(Module{Name: "PrgEnv-cray/8.5.0", Deps: []string{"craype/2.7.30", "cce/17.0.1"}})
	s.Add(Module{Name: "cce/17.0.1", Prepend: map[string]string{"LD_LIBRARY_PATH": "/opt/cray/pe/cce/17.0.1/lib"}})
	s.Add(Module{Name: "cray-netcdf/4.9.0", Deps: []string{"cray-hdf5/1.12.2"},
		Prepend: map[string]string{"LD_LIBRARY_PATH": "/opt/cray/pe/netcdf/4.9.0/lib"}})
	s.Add(Module{Name: "cray-hdf5/1.12.2", Prepend: map[string]string{"LD_LIBRARY_PATH": "/opt/cray/pe/hdf5/1.12.2/lib"}})
	s.Add(Module{Name: "siren/1.0", Setenv: map[string]string{"LD_PRELOAD": "/opt/siren/lib/siren.so"}})
	return s
}

func TestLoadWithDeps(t *testing.T) {
	sess, err := testSystem().NewSession()
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Load("PrgEnv-cray/8.5.0"); err != nil {
		t.Fatal(err)
	}
	want := []string{"craype/2.7.30", "cce/17.0.1", "PrgEnv-cray/8.5.0"}
	if got := sess.Loaded(); !reflect.DeepEqual(got, want) {
		t.Errorf("Loaded = %q, want %q", got, want)
	}
}

func TestLoadIdempotent(t *testing.T) {
	sess, _ := testSystem().NewSession()
	sess.Load("cray-netcdf/4.9.0")
	sess.Load("cray-netcdf/4.9.0")
	if got := len(sess.Loaded()); got != 2 {
		t.Errorf("loaded %d modules, want 2 (hdf5 dep + netcdf)", got)
	}
}

func TestUnknownModule(t *testing.T) {
	sess, _ := testSystem().NewSession()
	if err := sess.Load("nope/1.0"); !errors.Is(err, ErrUnknownModule) {
		t.Errorf("err = %v", err)
	}
}

func TestEnvRendering(t *testing.T) {
	sess, _ := testSystem().NewSession()
	sess.Load("cray-netcdf/4.9.0")
	sess.Load("siren/1.0")
	env := sess.Env()
	if env["LOADEDMODULES"] != "cray-hdf5/1.12.2:cray-netcdf/4.9.0:siren/1.0" {
		t.Errorf("LOADEDMODULES = %q", env["LOADEDMODULES"])
	}
	if env["LD_PRELOAD"] != "/opt/siren/lib/siren.so" {
		t.Errorf("LD_PRELOAD = %q", env["LD_PRELOAD"])
	}
	// netcdf prepended after hdf5, so netcdf path comes first.
	if !strings.HasPrefix(env["LD_LIBRARY_PATH"], "/opt/cray/pe/netcdf/4.9.0/lib:") {
		t.Errorf("LD_LIBRARY_PATH = %q", env["LD_LIBRARY_PATH"])
	}
}

func TestDefaults(t *testing.T) {
	s := testSystem()
	s.SetDefaults("craype/2.7.30")
	sess, err := s.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	if !sess.IsLoaded("craype/2.7.30") {
		t.Error("default module not loaded")
	}
	s.SetDefaults("missing/1")
	if _, err := s.NewSession(); err == nil {
		t.Error("missing default should fail session creation")
	}
}

func TestUnloadKeepsDeps(t *testing.T) {
	sess, _ := testSystem().NewSession()
	sess.Load("cray-netcdf/4.9.0")
	sess.Unload("cray-netcdf/4.9.0")
	if sess.IsLoaded("cray-netcdf/4.9.0") {
		t.Error("unload failed")
	}
	if !sess.IsLoaded("cray-hdf5/1.12.2") {
		t.Error("dependency should survive unload (LMOD semantics)")
	}
}

func TestParseLoadedModules(t *testing.T) {
	got := ParseLoadedModules("a/1:b/2:c/3")
	if !reflect.DeepEqual(got, []string{"a/1", "b/2", "c/3"}) {
		t.Errorf("parse = %q", got)
	}
	if ParseLoadedModules("") != nil {
		t.Error("empty should be nil")
	}
	if got := ParseLoadedModules("a/1::b/2"); !reflect.DeepEqual(got, []string{"a/1", "b/2"}) {
		t.Errorf("double colon: %q", got)
	}
}

func TestAvailableSorted(t *testing.T) {
	got := testSystem().Available()
	if len(got) != 6 {
		t.Fatalf("Available = %q", got)
	}
	for i := 1; i < len(got); i++ {
		if got[i-1] >= got[i] {
			t.Errorf("not sorted: %q", got)
		}
	}
}
