// Package lmod simulates an LMOD-style environment-module system.
//
// SIREN reads the LOADEDMODULES environment variable to record which modules
// a process ran under, and the paper notes why modules alone are unreliable
// identifiers: they load as dependencies of other modules, by default, or
// from copy-pasted job scripts. This simulation reproduces those mechanics —
// dependency auto-loading, default modules, environment mutation
// (LD_LIBRARY_PATH prepends are how Cray PE wrappers redirect library
// resolution) — so the collector sees realistic module state.
package lmod

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Module describes one loadable module.
type Module struct {
	Name    string            // "cray-netcdf/4.9.0"
	Deps    []string          // modules auto-loaded first
	Setenv  map[string]string // environment variables set on load
	Prepend map[string]string // path-style variables to prepend (LD_LIBRARY_PATH etc.)
}

// System is the site-wide module tree. It is immutable after construction
// and safe for concurrent Session creation.
type System struct {
	mu       sync.RWMutex
	modules  map[string]Module
	defaults []string // modules loaded into every new session (e.g. craype)
}

// NewSystem returns an empty module tree.
func NewSystem() *System {
	return &System{modules: make(map[string]Module)}
}

// Add registers a module definition.
func (s *System) Add(m Module) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.modules[m.Name] = m
}

// SetDefaults declares modules auto-loaded into every session.
func (s *System) SetDefaults(names ...string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.defaults = append([]string(nil), names...)
}

// Available returns all module names, sorted.
func (s *System) Available() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.modules))
	for n := range s.modules {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// lookup fetches a module definition.
func (s *System) lookup(name string) (Module, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	m, ok := s.modules[name]
	return m, ok
}

// Session is one user shell's module state. Sessions are not safe for
// concurrent use (a shell is single-threaded).
type Session struct {
	sys    *System
	loaded []string
	env    map[string]string
}

// NewSession starts a session with the system defaults loaded.
func (s *System) NewSession() (*Session, error) {
	sess := &Session{sys: s, env: make(map[string]string)}
	s.mu.RLock()
	defaults := append([]string(nil), s.defaults...)
	s.mu.RUnlock()
	for _, d := range defaults {
		if err := sess.Load(d); err != nil {
			return nil, fmt.Errorf("lmod: loading default %s: %w", d, err)
		}
	}
	return sess, nil
}

// ErrUnknownModule is wrapped by Load for unknown names.
var ErrUnknownModule = fmt.Errorf("lmod: unknown module")

// Load loads a module and (recursively) its dependencies. Loading an
// already-loaded module is a no-op, as in LMOD.
func (sess *Session) Load(name string) error {
	if sess.IsLoaded(name) {
		return nil
	}
	m, ok := sess.sys.lookup(name)
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownModule, name)
	}
	for _, dep := range m.Deps {
		if err := sess.Load(dep); err != nil {
			return fmt.Errorf("lmod: dependency of %s: %w", name, err)
		}
	}
	for k, v := range m.Setenv {
		sess.env[k] = v
	}
	for k, v := range m.Prepend {
		if cur := sess.env[k]; cur != "" {
			sess.env[k] = v + ":" + cur
		} else {
			sess.env[k] = v
		}
	}
	sess.loaded = append(sess.loaded, name)
	return nil
}

// Unload removes a module (but not its dependencies — LMOD keeps those
// unless purged, which is one reason module lists are noisy identifiers).
func (sess *Session) Unload(name string) {
	for i, n := range sess.loaded {
		if n == name {
			sess.loaded = append(sess.loaded[:i], sess.loaded[i+1:]...)
			return
		}
	}
}

// IsLoaded reports whether name is currently loaded.
func (sess *Session) IsLoaded(name string) bool {
	for _, n := range sess.loaded {
		if n == name {
			return true
		}
	}
	return false
}

// Loaded returns the loaded module names in load order.
func (sess *Session) Loaded() []string { return append([]string(nil), sess.loaded...) }

// Env renders the session environment: module-set variables plus
// LOADEDMODULES in the colon-joined form SIREN parses.
func (sess *Session) Env() map[string]string {
	out := make(map[string]string, len(sess.env)+1)
	for k, v := range sess.env {
		out[k] = v
	}
	out["LOADEDMODULES"] = strings.Join(sess.loaded, ":")
	return out
}

// ParseLoadedModules splits a LOADEDMODULES value back into module names —
// the post-processing inverse used by the analysis layer.
func ParseLoadedModules(v string) []string {
	if v == "" {
		return nil
	}
	var out []string
	for _, m := range strings.Split(v, ":") {
		if m != "" {
			out = append(out, m)
		}
	}
	return out
}
