package wire

import (
	"bytes"
	"math/rand"
	"testing"
)

// FuzzWireParse: Parse must never panic and must round-trip what Encode
// produced, no matter how datagrams are mutated in flight.
func FuzzWireParse(f *testing.F) {
	f.Add([]byte("SIREN1|JOBID=1|STEPID=0|PID=1|HASH=h|HOST=n|TIME=1|LAYER=SELF|TYPE=T|SEQ=0|TOT=1|CONTENT=x"))
	f.Add([]byte("garbage"))
	f.Add([]byte(""))
	f.Add(Encode(Message{Header: Header{JobID: "9", PID: 3, Layer: LayerScript,
		Type: TypeFileH, Total: 1}, Content: []byte("3:abc:def")}))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Parse(data)
		if err != nil {
			return
		}
		// Anything that parses must re-encode to something that parses to
		// the same message.
		m2, err := Parse(Encode(m))
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if m2.Header != m.Header || !bytes.Equal(m2.Content, m.Content) {
			t.Fatalf("round-trip mismatch: %+v vs %+v", m, m2)
		}
	})
}

// FuzzReassemble feeds Reassemble with parsed datagrams (one per line of the
// fuzz input) plus a chunked-and-reversed version of the raw input, and
// checks the structural invariants: no panic, content bounded by the sum of
// chunk payloads, and Complete records reproducing the chunked content
// exactly. The giant-TOT seed pins the hostile-Total fix — Reassemble must
// walk the chunks that arrived, not the announced range, or this seed alone
// costs two billion iterations.
func FuzzReassemble(f *testing.F) {
	f.Add([]byte("SIREN1|JOBID=1|STEPID=0|PID=1|HASH=h|HOST=n|TIME=1|LAYER=SELF|TYPE=T|SEQ=0|TOT=1|CONTENT=x"), uint8(16))
	f.Add([]byte("SIREN1|JOBID=1|STEPID=0|PID=1|HASH=h|HOST=n|TIME=1|LAYER=SELF|TYPE=T|SEQ=0|TOT=2000000000|CONTENT=x"), uint8(0))
	two := Encode(Message{Header: sampleHeader(), Content: []byte("first")})
	two = append(two, '\n')
	two = append(two, Encode(Message{Header: sampleHeader(), Content: []byte("second")})...)
	f.Add(two, uint8(4))
	f.Add([]byte("not a datagram\nat all"), uint8(255))
	f.Fuzz(func(t *testing.T, data []byte, room uint8) {
		// Arbitrary parsed datagrams, including Total mismatches and gaps.
		var msgs []Message
		var payload int
		for _, line := range bytes.Split(data, []byte("\n")) {
			m, err := Parse(line)
			if err != nil {
				continue
			}
			msgs = append(msgs, m)
			payload += len(m.Content)
		}
		for _, r := range Reassemble(msgs) {
			if len(r.Content) > payload {
				t.Fatalf("record content %d bytes exceeds %d bytes of chunk payload", len(r.Content), payload)
			}
			if r.Complete && r.Header.Total < 1 {
				t.Fatalf("complete record with Total %d", r.Header.Total)
			}
		}

		// Chunk/Reassemble round trip: chunks delivered in reverse order
		// must reassemble to exactly one Complete record with the original
		// content.
		chunks := Chunk(sampleHeader(), data, 64+int(room))
		for i, j := 0, len(chunks)-1; i < j; i, j = i+1, j-1 {
			chunks[i], chunks[j] = chunks[j], chunks[i]
		}
		recs := Reassemble(chunks)
		if len(recs) != 1 {
			t.Fatalf("chunked input reassembled to %d records", len(recs))
		}
		if !recs[0].Complete {
			t.Fatalf("lossless chunk delivery marked incomplete: %+v", recs[0].Header)
		}
		if !bytes.Equal(recs[0].Content, data) {
			t.Fatalf("chunk round trip lost content: %d bytes in, %d bytes out", len(data), len(recs[0].Content))
		}
	})
}

// TestParseSurvivesRandomMutations complements the fuzz target for plain
// `go test` runs: flip random bytes of valid datagrams and require no panic
// and consistent accept/reject behaviour.
func TestParseSurvivesRandomMutations(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	base := Encode(Message{Header: sampleHeader(), Content: []byte("the payload, with | separators = and\nnewlines")})
	for i := 0; i < 5000; i++ {
		mutated := append([]byte(nil), base...)
		for n := 1 + rng.Intn(4); n > 0; n-- {
			mutated[rng.Intn(len(mutated))] = byte(rng.Intn(256))
		}
		m, err := Parse(mutated)
		if err != nil {
			continue
		}
		// Accepted: must survive a re-encode cycle.
		if _, err := Parse(Encode(m)); err != nil {
			t.Fatalf("accepted datagram failed round trip: %q", mutated)
		}
	}
}

// TestReassembleHostileTotal pins the DoS fix outside the fuzzer: one valid
// datagram announcing two billion chunks must reassemble in the time of one.
func TestReassembleHostileTotal(t *testing.T) {
	h := sampleHeader()
	h.Seq, h.Total = 0, 2_000_000_000
	recs := Reassemble([]Message{{Header: h, Content: []byte("x")}})
	if len(recs) != 1 {
		t.Fatalf("got %d records", len(recs))
	}
	if recs[0].Complete {
		t.Fatal("1 of 2000000000 chunks marked Complete")
	}
	if string(recs[0].Content) != "x" {
		t.Fatalf("partial content %q", recs[0].Content)
	}
	if recs[0].Header.Total != 2_000_000_000 {
		t.Fatalf("Total rewritten to %d", recs[0].Header.Total)
	}
}
