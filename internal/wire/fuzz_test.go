package wire

import (
	"bytes"
	"math/rand"
	"testing"
)

// FuzzParse: Parse must never panic and must round-trip what Encode
// produced, no matter how datagrams are mutated in flight.
func FuzzParse(f *testing.F) {
	f.Add([]byte("SIREN1|JOBID=1|STEPID=0|PID=1|HASH=h|HOST=n|TIME=1|LAYER=SELF|TYPE=T|SEQ=0|TOT=1|CONTENT=x"))
	f.Add([]byte("garbage"))
	f.Add([]byte(""))
	f.Add(Encode(Message{Header: Header{JobID: "9", PID: 3, Layer: LayerScript,
		Type: TypeFileH, Total: 1}, Content: []byte("3:abc:def")}))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Parse(data)
		if err != nil {
			return
		}
		// Anything that parses must re-encode to something that parses to
		// the same message.
		m2, err := Parse(Encode(m))
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if m2.Header != m.Header || !bytes.Equal(m2.Content, m.Content) {
			t.Fatalf("round-trip mismatch: %+v vs %+v", m, m2)
		}
	})
}

// TestParseSurvivesRandomMutations complements the fuzz target for plain
// `go test` runs: flip random bytes of valid datagrams and require no panic
// and consistent accept/reject behaviour.
func TestParseSurvivesRandomMutations(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	base := Encode(Message{Header: sampleHeader(), Content: []byte("the payload, with | separators = and\nnewlines")})
	for i := 0; i < 5000; i++ {
		mutated := append([]byte(nil), base...)
		for n := 1 + rng.Intn(4); n > 0; n-- {
			mutated[rng.Intn(len(mutated))] = byte(rng.Intn(256))
		}
		m, err := Parse(mutated)
		if err != nil {
			continue
		}
		// Accepted: must survive a re-encode cycle.
		if _, err := Parse(Encode(m)); err != nil {
			t.Fatalf("accepted datagram failed round trip: %q", mutated)
		}
	}
}
