package wire

import "testing"

// TestPartitionHashGolden pins PartitionHash and PartitionIndex to fixed
// values. These outputs are a cross-process protocol, not an implementation
// detail: membership rendezvous scores are seeded by PartitionHash, static
// -partition admission slices are PartitionIndex, and senders and receivers
// built from different commits must agree on both — a hash change silently
// reshuffles key ownership and makes every receiver reject everything.
// If this test fails, the wire-compatibility contract broke: bump it
// deliberately alongside a deployment-wide flag day, never casually.
func TestPartitionHashGolden(t *testing.T) {
	cases := []struct {
		job, host string
		hash      uint64
		idx2      int // PartitionIndex(..., 2)
		idx3      int // PartitionIndex(..., 3)
		idx16     int // PartitionIndex(..., 16)
	}{
		{"", "", 0xa258d6ec1fb5d95c, 0, 1, 12},
		{"8103607", "nid001234", 0xe2b8ebb2cdb96f9d, 0, 1, 2},
		{"8103607", "nid005678", 0x79c8000068085599, 0, 0, 0},
		{"9000001", "nid001234", 0x52f1758dc74128ce, 1, 2, 13},
		{"4242", "uan01", 0xecef9dae8cc606b1, 0, 2, 14},
		{"12345678", "nid007777", 0xb94375cc4f1f0ebd, 0, 0, 12},
	}
	for _, c := range cases {
		job, host := []byte(c.job), []byte(c.host)
		if got := PartitionHash(job, host); got != c.hash {
			t.Errorf("PartitionHash(%q, %q) = %#016x, want %#016x", c.job, c.host, got, c.hash)
		}
		if got := PartitionIndex(job, host, 2); got != c.idx2 {
			t.Errorf("PartitionIndex(%q, %q, 2) = %d, want %d", c.job, c.host, got, c.idx2)
		}
		if got := PartitionIndex(job, host, 3); got != c.idx3 {
			t.Errorf("PartitionIndex(%q, %q, 3) = %d, want %d", c.job, c.host, got, c.idx3)
		}
		if got := PartitionIndex(job, host, 16); got != c.idx16 {
			t.Errorf("PartitionIndex(%q, %q, 16) = %d, want %d", c.job, c.host, got, c.idx16)
		}
	}
}
