package wire

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
)

// Transport delivers encoded datagrams. Implementations must be safe for
// concurrent Send calls. Send follows fire-and-forget semantics: an error
// means the datagram was locally rejected, never that delivery failed.
type Transport interface {
	Send(datagram []byte) error
	Close() error
}

// UDPTransport sends datagrams over a connected UDP socket.
type UDPTransport struct {
	conn *net.UDPConn
}

// DialUDP connects a UDP transport to addr ("host:port").
func DialUDP(addr string) (*UDPTransport, error) {
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: resolving %s: %w", addr, err)
	}
	conn, err := net.DialUDP("udp", nil, udpAddr)
	if err != nil {
		return nil, fmt.Errorf("wire: dialing %s: %w", addr, err)
	}
	return &UDPTransport{conn: conn}, nil
}

// Send writes one datagram. Errors (e.g. ECONNREFUSED picked up on a
// connected UDP socket) are returned but senders are expected to ignore
// them — fire and forget.
func (t *UDPTransport) Send(datagram []byte) error {
	_, err := t.conn.Write(datagram)
	return err
}

// Close releases the socket.
func (t *UDPTransport) Close() error { return t.conn.Close() }

// ChanTransport delivers datagrams into an in-process channel — the
// deterministic test/simulation substitute for a UDP socket. Datagrams are
// copied, so senders may reuse buffers.
type ChanTransport struct {
	mu     sync.Mutex
	ch     chan []byte
	closed bool
	// Dropped counts datagrams discarded because the channel was full —
	// mirroring kernel socket-buffer overflow, the main UDP loss mode.
	Dropped int
}

// NewChanTransport creates a channel transport with the given buffer depth.
func NewChanTransport(depth int) *ChanTransport {
	return &ChanTransport{ch: make(chan []byte, depth)}
}

// C exposes the receive side.
func (t *ChanTransport) C() <-chan []byte { return t.ch }

// Send enqueues a copy of the datagram, dropping it if the buffer is full
// (exactly how a kernel drops UDP under pressure).
func (t *ChanTransport) Send(datagram []byte) error {
	cp := append([]byte(nil), datagram...)
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return fmt.Errorf("wire: transport closed")
	}
	select {
	case t.ch <- cp:
	default:
		t.Dropped++
	}
	return nil
}

// Close closes the channel; subsequent Sends fail.
func (t *ChanTransport) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.closed {
		t.closed = true
		close(t.ch)
	}
	return nil
}

// LossyTransport wraps another transport and drops a deterministic,
// seeded fraction of datagrams — the knob for reproducing the paper's
// "~0.02% of jobs have missing fields" observation.
type LossyTransport struct {
	mu      sync.Mutex
	inner   Transport
	rate    float64
	rng     *rand.Rand
	Dropped int
	Sent    int
}

// NewLossyTransport drops each datagram with probability rate (0..1).
func NewLossyTransport(inner Transport, rate float64, seed int64) *LossyTransport {
	return &LossyTransport{inner: inner, rate: rate, rng: rand.New(rand.NewSource(seed))}
}

// Send forwards or silently drops the datagram.
func (t *LossyTransport) Send(datagram []byte) error {
	t.mu.Lock()
	drop := t.rng.Float64() < t.rate
	if drop {
		t.Dropped++
	} else {
		t.Sent++
	}
	t.mu.Unlock()
	if drop {
		return nil
	}
	return t.inner.Send(datagram)
}

// Close closes the wrapped transport.
func (t *LossyTransport) Close() error { return t.inner.Close() }
