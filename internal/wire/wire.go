// Package wire defines SIREN's UDP message format: a textual header carrying
// the process identity (the columns of the receiver's database) followed by
// a free-form content payload, with chunking for payloads that exceed a
// datagram.
//
// Per the paper (§3.1 "UDP Message Sender"), each collected data category
// travels as its own message; long categories (module lists, shared-object
// lists) are split into chunks sent separately, and the header fields —
// JOBID, STEPID, PID, HASH, HOST, TIME, LAYER, TYPE — let the receiver's
// post-processing reassemble chunks and distinguish processes, including
// exec()-reused PIDs, via the executable-path hash.
package wire

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"siren/internal/xxhash"
)

// Message types: the data categories siren.so collects.
const (
	TypeMetadata   = "METADATA"    // process ids + executable file metadata
	TypeObjects    = "OBJECTS"     // loaded shared objects, one path per line
	TypeModules    = "MODULES"     // loaded modules, one per line
	TypeCompilers  = "COMPILERS"   // .comment compiler records, one per line
	TypeMaps       = "MAPS"        // /proc/self/maps text
	TypeFileH      = "FILE_H"      // fuzzy hash of the raw executable (or script)
	TypeStringsH   = "STRINGS_H"   // fuzzy hash of printable strings
	TypeSymbolsH   = "SYMBOLS_H"   // fuzzy hash of global symbol names
	TypeObjectsH   = "OBJECTS_H"   // fuzzy hash of the shared-object list
	TypeModulesH   = "MODULES_H"   // fuzzy hash of the module list
	TypeCompilersH = "COMPILERS_H" // fuzzy hash of the compiler list
	TypeMapsH      = "MAPS_H"      // fuzzy hash of the memory map
)

// Layers distinguish the hooked process itself from a Python input script
// whose data is collected by the interpreter's hook.
const (
	LayerSelf   = "SELF"
	LayerScript = "SCRIPT"
)

// MaxDatagram is the default maximum datagram size the chunker targets;
// conservative for typical MTUs so no IP fragmentation occurs.
const MaxDatagram = 1400

const magic = "SIREN1"

// Header identifies the process and data category a message belongs to.
// All fields map 1:1 onto database columns.
type Header struct {
	JobID  string // SLURM_JOB_ID value ("" outside Slurm)
	StepID string // SLURM_STEP_ID value
	PID    int
	Hash   string // 128-bit hash of the executable path, 32 hex chars
	Host   string
	Time   int64  // collection unix time, one-second granularity
	Layer  string // LayerSelf or LayerScript
	Type   string // one of the Type* constants
	Seq    int    // chunk index, 0-based
	Total  int    // chunk count (>= 1)
}

// Key returns the grouping key shared by all chunks of one logical record:
// everything except Seq/Total.
func (h Header) Key() string {
	return strings.Join([]string{h.JobID, h.StepID, strconv.Itoa(h.PID), h.Hash, h.Host,
		strconv.FormatInt(h.Time, 10), h.Layer, h.Type}, "\x1f")
}

// ProcessKey groups all records of one process instance (all types).
func (h Header) ProcessKey() string {
	return strings.Join([]string{h.JobID, h.StepID, strconv.Itoa(h.PID), h.Hash, h.Host,
		strconv.FormatInt(h.Time, 10)}, "\x1f")
}

// Message is one datagram: header plus content chunk.
type Message struct {
	Header
	Content []byte
}

// Encode renders the message as a datagram. The content is last and raw, so
// it may contain any bytes including the field separator.
func Encode(m Message) []byte {
	var sb strings.Builder
	sb.Grow(128 + len(m.Content))
	sb.WriteString(magic)
	sb.WriteString("|JOBID=")
	sb.WriteString(m.JobID)
	sb.WriteString("|STEPID=")
	sb.WriteString(m.StepID)
	sb.WriteString("|PID=")
	sb.WriteString(strconv.Itoa(m.PID))
	sb.WriteString("|HASH=")
	sb.WriteString(m.Hash)
	sb.WriteString("|HOST=")
	sb.WriteString(m.Host)
	sb.WriteString("|TIME=")
	sb.WriteString(strconv.FormatInt(m.Time, 10))
	sb.WriteString("|LAYER=")
	sb.WriteString(m.Layer)
	sb.WriteString("|TYPE=")
	sb.WriteString(m.Type)
	sb.WriteString("|SEQ=")
	sb.WriteString(strconv.Itoa(m.Seq))
	sb.WriteString("|TOT=")
	sb.WriteString(strconv.Itoa(m.Total))
	sb.WriteString("|CONTENT=")
	sb.WriteString(string(m.Content))
	return []byte(sb.String())
}

// ErrMalformed is returned by Parse for datagrams that do not follow the
// SIREN wire format. The receiver drops such datagrams (graceful failure).
var ErrMalformed = errors.New("wire: malformed datagram")

// PartitionFields extracts the raw JOBID and HOST header values from an
// encoded datagram in one bounded scan, without parsing or allocating: the
// returned slices alias the datagram. The receiver's shard dispatcher uses
// this to hash-partition datagrams by (JobID, Host) before the full Parse
// happens on a writer shard.
//
// The scan walks the fixed field order exactly like Parse and stops at HOST,
// so it never touches the content bytes — a "|HOST=" pattern inside CONTENT
// can never match. It reports ok=false when the magic is wrong or the header
// deviates from the wire layout (such datagrams fail Parse anyway).
func PartitionFields(datagram []byte) (job, host []byte, ok bool) {
	if len(datagram) < len(magic)+1 || string(datagram[:len(magic)+1]) != magic+"|" {
		return nil, nil, false
	}
	rest := datagram[len(magic)+1:]
	for i, prefix := range fieldPrefixes {
		if len(rest) < len(prefix) || string(rest[:len(prefix)]) != prefix {
			return nil, nil, false
		}
		rest = rest[len(prefix):]
		sep := bytes.IndexByte(rest, '|')
		if sep < 0 {
			return nil, nil, false // header values are always '|'-terminated
		}
		switch i {
		case 0:
			job = rest[:sep]
		case 4:
			return job, rest[:sep], true // HOST: done, content never reached
		}
		rest = rest[sep+1:]
	}
	return nil, nil, false
}

// fieldPrefixes are the ten fixed header fields preceding CONTENT, in wire
// order. Precomputed so the parse hot path never concatenates strings.
var fieldPrefixes = [...]string{"JOBID=", "STEPID=", "PID=", "HASH=", "HOST=", "TIME=", "LAYER=", "TYPE=", "SEQ=", "TOT="}

// PartitionHash is the canonical shard-partitioning hash over the JOBID and
// HOST header values. The receiver's dispatcher and sirendb's store shards
// must agree on this function: when the receiver's writer-shard count equals
// the store's shard count, every message a writer handles hashes to the store
// shard with the writer's own index, so batches route shard→shard with no
// re-partitioning and no cross-shard lock contention.
func PartitionHash(job, host []byte) uint64 {
	return xxhash.Sum64Seed(host, xxhash.Sum64(job))
}

// PartitionIndex maps a (JOBID, HOST) pair to one of n receiver partitions —
// the admission rule of a multi-receiver deployment. It reduces the *high*
// 32 bits of PartitionHash, while writer/store shard routing reduces the
// full hash (in practice its low bits) modulo the shard count: taking both
// from the same low bits would leave a partition-k receiver with only hash
// residues ≡ k, concentrating its admitted traffic on gcd(n, shards)-th of
// the writer and store shards. High and low xxhash bits are independent, so
// every receiver's slice still spreads across all its shards.
func PartitionIndex(job, host []byte, n int) int {
	return int((PartitionHash(job, host) >> 32) % uint64(n))
}

// Parse decodes a datagram produced by Encode.
//
// This is the receiver's per-message hot path, so copying is kept minimal:
// the header region is converted to a string exactly once (every string
// field of the Message shares that one small allocation) and the content
// bytes are copied exactly once. A valid datagram's header cannot contain
// '|' inside a value, so the first "|CONTENT=" occurrence is always the real
// content marker — content itself may contain the pattern freely.
func Parse(datagram []byte) (Message, error) {
	const contentMark = "|CONTENT="
	ci := bytes.Index(datagram, []byte(contentMark))
	if ci < 0 {
		if len(datagram) < len(magic)+1 || string(datagram[:len(magic)+1]) != magic+"|" {
			return Message{}, fmt.Errorf("%w: bad magic", ErrMalformed)
		}
		return Message{}, fmt.Errorf("%w: missing CONTENT", ErrMalformed)
	}
	s := string(datagram[:ci])
	if !strings.HasPrefix(s, magic+"|") {
		return Message{}, fmt.Errorf("%w: bad magic", ErrMalformed)
	}
	s = s[len(magic)+1:]
	var m Message
	for i, prefix := range fieldPrefixes {
		name := prefix[:len(prefix)-1]
		if !strings.HasPrefix(s, prefix) {
			return Message{}, fmt.Errorf("%w: expected field %s", ErrMalformed, name)
		}
		s = s[len(prefix):]
		var val string
		if sep := strings.IndexByte(s, '|'); sep >= 0 {
			val, s = s[:sep], s[sep+1:]
		} else if i == len(fieldPrefixes)-1 {
			val, s = s, "" // TOT runs to the content marker
		} else {
			return Message{}, fmt.Errorf("%w: unterminated field %s", ErrMalformed, name)
		}
		var err error
		switch i {
		case 0:
			m.JobID = val
		case 1:
			m.StepID = val
		case 2:
			m.PID, err = strconv.Atoi(val)
		case 3:
			m.Hash = val
		case 4:
			m.Host = val
		case 5:
			m.Time, err = strconv.ParseInt(val, 10, 64)
		case 6:
			m.Layer = val
		case 7:
			m.Type = val
		case 8:
			m.Seq, err = strconv.Atoi(val)
		case 9:
			m.Total, err = strconv.Atoi(val)
		}
		if err != nil {
			return Message{}, fmt.Errorf("%w: field %s: %v", ErrMalformed, name, err)
		}
	}
	if s != "" {
		// Extra bytes between TOT and the content marker: not Encode output.
		return Message{}, fmt.Errorf("%w: trailing header bytes", ErrMalformed)
	}
	m.Content = append([]byte{}, datagram[ci+len(contentMark):]...) // non-nil even when empty, like []byte("")
	if m.Total < 1 || m.Seq < 0 || m.Seq >= m.Total {
		return Message{}, fmt.Errorf("%w: chunk %d/%d out of range", ErrMalformed, m.Seq, m.Total)
	}
	return m, nil
}

// Chunk splits one logical record into datagrams no larger than maxSize.
// Header overhead is measured per chunk; content is sliced to fit. A record
// with empty content still produces one chunk (types like FILE_H always
// announce themselves even when the hash is empty).
func Chunk(h Header, content []byte, maxSize int) []Message {
	if maxSize <= 0 {
		maxSize = MaxDatagram
	}
	// Overhead of a chunk with worst-case SEQ/TOT digits.
	probe := Message{Header: h}
	probe.Seq, probe.Total = 999999, 999999
	overhead := len(Encode(probe))
	room := maxSize - overhead
	if room < 16 {
		room = 16 // pathological header: still make progress
	}
	n := (len(content) + room - 1) / room
	if n == 0 {
		n = 1
	}
	msgs := make([]Message, 0, n)
	for i := 0; i < n; i++ {
		lo := i * room
		hi := lo + room
		if hi > len(content) {
			hi = len(content)
		}
		m := Message{Header: h, Content: content[lo:hi]}
		m.Seq, m.Total = i, n
		msgs = append(msgs, m)
	}
	return msgs
}

// Record is a reassembled logical record.
type Record struct {
	// Header is the first chunk seen, except Total, which is the largest
	// Total announced by any chunk of the group — the chunk count the record
	// was reassembled against.
	Header  Header
	Content []byte
	// Complete is false when chunks were lost in transit or when chunks of
	// the group disagreed on Total (a re-sent record with different content
	// length interleaving with the original); Content then holds the
	// concatenation of the chunks that did arrive, in order.
	Complete bool
}

// Reassemble groups messages by record key and joins chunk contents. Records
// with missing chunks are returned with Complete=false — SIREN keeps partial
// data rather than discarding it (the fuzzy hashes of list categories remain
// comparable even with gaps, which is why the lists are hashed as well).
//
// Chunks arrive in any order, so the group's chunk count is the maximum
// Total announced across its chunks — not the first-seen header's. Sizing
// the loop from the first chunk silently dropped any chunk with
// Seq >= firstTotal (a reordered re-send with a larger Total) and could mark
// the record Complete with data missing. Groups whose chunks disagree on
// Total mix two versions of the record and are never Complete.
func Reassemble(msgs []Message) []Record {
	type group struct {
		header   Header
		maxTotal int  // largest Total announced by any chunk
		mismatch bool // chunks disagreed on Total: two record versions mixed
		chunks   map[int][]byte
	}
	groups := make(map[string]*group)
	var keys []string
	for _, m := range msgs {
		k := m.Key()
		g, ok := groups[k]
		if !ok {
			g = &group{header: m.Header, maxTotal: m.Total, chunks: make(map[int][]byte)}
			groups[k] = g
			keys = append(keys, k)
		}
		if m.Total != g.maxTotal {
			g.mismatch = true
			if m.Total > g.maxTotal {
				g.maxTotal = m.Total
			}
		}
		g.chunks[m.Seq] = m.Content
	}
	out := make([]Record, 0, len(keys))
	for _, k := range keys {
		g := groups[k]
		g.header.Total = g.maxTotal
		// Walk the chunks that actually arrived, in Seq order, never the
		// announced range: a single datagram with TOT=2000000000 must not
		// cost two billion map probes. The Seqs are distinct ints, so
		// len == maxTotal with min 0 and max maxTotal-1 pigeonholes to
		// exactly the full range [0, maxTotal).
		seqs := make([]int, 0, len(g.chunks))
		for s := range g.chunks {
			seqs = append(seqs, s)
		}
		sort.Ints(seqs)
		complete := !g.mismatch && len(seqs) == g.maxTotal &&
			seqs[0] == 0 && seqs[len(seqs)-1] == g.maxTotal-1
		var content []byte
		for _, s := range seqs {
			content = append(content, g.chunks[s]...)
		}
		out = append(out, Record{Header: g.header, Content: content, Complete: complete})
	}
	return out
}
