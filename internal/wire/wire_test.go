package wire

import (
	"bytes"
	"fmt"
	"math/rand"
	"net"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func sampleHeader() Header {
	return Header{
		JobID: "8412345", StepID: "0", PID: 41923,
		Hash: "0123456789abcdef0123456789abcdef",
		Host: "nid001234", Time: 1733912345,
		Layer: LayerSelf, Type: TypeObjects, Seq: 0, Total: 1,
	}
}

func TestEncodeParseRoundTrip(t *testing.T) {
	m := Message{Header: sampleHeader(), Content: []byte("/lib64/libc.so.6\n/lib64/libm.so.6\n")}
	got, err := Parse(Encode(m))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Errorf("round trip:\n got %+v\nwant %+v", got, m)
	}
}

func TestContentMayContainSeparators(t *testing.T) {
	m := Message{Header: sampleHeader(), Content: []byte("weird|CONTENT=|JOBID=99|\x1f\x00 bytes")}
	got, err := Parse(Encode(m))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Content, m.Content) {
		t.Errorf("content corrupted: %q", got.Content)
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	bad := [][]byte{
		nil,
		[]byte("not siren"),
		[]byte("SIREN1|nope"),
		[]byte("SIREN1|JOBID=1|STEPID=0|PID=x|HASH=h|HOST=n|TIME=1|LAYER=SELF|TYPE=T|SEQ=0|TOT=1|CONTENT="),
		[]byte("SIREN1|JOBID=1|STEPID=0|PID=1|HASH=h|HOST=n|TIME=1|LAYER=SELF|TYPE=T|SEQ=5|TOT=2|CONTENT="), // seq out of range
		[]byte("SIREN1|JOBID=1|STEPID=0|PID=1|HASH=h|HOST=n|TIME=1|LAYER=SELF|TYPE=T|SEQ=0|TOT=0|CONTENT="), // total < 1
	}
	for i, d := range bad {
		if _, err := Parse(d); err == nil {
			t.Errorf("case %d: Parse accepted %q", i, d)
		}
	}
}

func TestPartitionFields(t *testing.T) {
	m := Message{Header: sampleHeader(), Content: []byte("payload|HOST=fake|JOBID=fake")}
	job, host, ok := PartitionFields(Encode(m))
	if !ok {
		t.Fatal("PartitionFields rejected a valid datagram")
	}
	if string(job) != m.JobID || string(host) != m.Host {
		t.Errorf("got job=%q host=%q, want %q/%q", job, host, m.JobID, m.Host)
	}
	for _, bad := range [][]byte{
		nil,
		[]byte("not siren"),
		[]byte("SIREN1|JOBID=1"),                // unterminated
		[]byte("SIREN1|JOBID=1|HOST=n|rest"),    // fields out of wire order
		[]byte("SIREN1|STEPID=0|JOBID=1|HOST="), // ditto
	} {
		if _, _, ok := PartitionFields(bad); ok {
			t.Errorf("PartitionFields accepted %q", bad)
		}
	}
}

func TestPartitionHashAgreesAcrossRepresentations(t *testing.T) {
	// The receiver hashes the raw header slices from PartitionFields; the
	// store hashes the parsed Message fields. Both must pick the same shard
	// for every message, or the writer→store 1:1 routing breaks.
	for i := 0; i < 50; i++ {
		m := Message{Header: sampleHeader()}
		m.JobID = fmt.Sprintf("%d", 4242+i)
		m.Host = fmt.Sprintf("nid%06d", i)
		m.Content = []byte("x")
		d := Encode(m)
		job, host, ok := PartitionFields(d)
		if !ok {
			t.Fatal("PartitionFields rejected a valid datagram")
		}
		raw := PartitionHash(job, host)
		parsed := PartitionHash([]byte(m.JobID), []byte(m.Host))
		if raw != parsed {
			t.Fatalf("hash mismatch for job=%s host=%s: raw %x, parsed %x", m.JobID, m.Host, raw, parsed)
		}
	}
	// The hash actually disperses across shard counts used in practice.
	seen := make(map[uint64]bool)
	for i := 0; i < 64; i++ {
		h := PartitionHash([]byte(fmt.Sprintf("job-%d", i)), []byte("nid001001"))
		seen[h%4] = true
	}
	if len(seen) != 4 {
		t.Errorf("64 jobs landed on only %d of 4 shards", len(seen))
	}
}

func TestChunkRespectsMaxSize(t *testing.T) {
	h := sampleHeader()
	content := bytes.Repeat([]byte("/opt/cray/pe/lib64/libsci_cray.so.6\n"), 200)
	msgs := Chunk(h, content, MaxDatagram)
	if len(msgs) < 2 {
		t.Fatalf("expected multiple chunks, got %d", len(msgs))
	}
	var joined []byte
	for i, m := range msgs {
		d := Encode(m)
		if len(d) > MaxDatagram {
			t.Errorf("chunk %d is %d bytes > %d", i, len(d), MaxDatagram)
		}
		if m.Seq != i || m.Total != len(msgs) {
			t.Errorf("chunk %d has seq=%d total=%d", i, m.Seq, m.Total)
		}
		joined = append(joined, m.Content...)
	}
	if !bytes.Equal(joined, content) {
		t.Error("chunk contents do not concatenate to the original")
	}
}

func TestChunkEmptyContent(t *testing.T) {
	msgs := Chunk(sampleHeader(), nil, MaxDatagram)
	if len(msgs) != 1 || msgs[0].Total != 1 {
		t.Fatalf("empty content must yield one chunk: %+v", msgs)
	}
}

func TestReassembleComplete(t *testing.T) {
	h := sampleHeader()
	content := bytes.Repeat([]byte("x"), 5000)
	msgs := Chunk(h, content, 600)
	// Shuffle delivery order: UDP does not guarantee ordering.
	rng := rand.New(rand.NewSource(3))
	rng.Shuffle(len(msgs), func(i, j int) { msgs[i], msgs[j] = msgs[j], msgs[i] })
	recs := Reassemble(msgs)
	if len(recs) != 1 {
		t.Fatalf("got %d records", len(recs))
	}
	if !recs[0].Complete {
		t.Error("record should be complete")
	}
	if !bytes.Equal(recs[0].Content, content) {
		t.Error("content mismatch after reassembly")
	}
}

func TestReassembleWithLoss(t *testing.T) {
	h := sampleHeader()
	content := []byte(strings.Repeat("ABCDEFGH", 1000))
	msgs := Chunk(h, content, 600)
	lost := msgs[2]
	msgs = append(msgs[:2], msgs[3:]...)
	recs := Reassemble(msgs)
	if len(recs) != 1 {
		t.Fatalf("got %d records", len(recs))
	}
	if recs[0].Complete {
		t.Error("record must be marked incomplete")
	}
	if len(recs[0].Content) != len(content)-len(lost.Content) {
		t.Errorf("partial content length %d, want %d", len(recs[0].Content), len(content)-len(lost.Content))
	}
}

func TestReassembleReorderedResendWithLargerTotal(t *testing.T) {
	// A record is sent as 2 chunks, then re-sent (content grew) as 3 chunks,
	// and UDP delivers the re-send's chunks interleaved with the originals so
	// the first chunk seen announces Total=2. Sizing the chunk loop from that
	// first-seen Total silently dropped chunk 2 and marked the record
	// Complete with a third of its data missing.
	h := sampleHeader()
	short := Chunk(h, []byte(strings.Repeat("a", 1000)), 600)
	long := Chunk(h, []byte(strings.Repeat("ab", 2000)), 600)
	if len(short) < 2 || len(long) <= len(short) {
		t.Fatalf("chunk counts %d/%d, want >= 2 and growing", len(short), len(long))
	}
	// Interleave so a short-version chunk (small Total) is seen first.
	msgs := []Message{short[0]}
	msgs = append(msgs, long...)
	msgs = append(msgs, short[1:]...)
	recs := Reassemble(msgs)
	if len(recs) != 1 {
		t.Fatalf("got %d records, want 1", len(recs))
	}
	if recs[0].Complete {
		t.Error("mixed-Total group must never be Complete")
	}
	if recs[0].Header.Total != len(long) {
		t.Errorf("record Total = %d, want max announced %d", recs[0].Header.Total, len(long))
	}
	// Chunks with Seq >= the first-seen Total must survive into Content:
	// the last chunk of the long version is only present if the loop ran to
	// max(Total).
	if !bytes.Contains(recs[0].Content, long[len(long)-1].Content) {
		t.Error("chunk with Seq >= first-seen Total was dropped")
	}
}

func TestReassembleFirstChunkCarriesSmallerTotal(t *testing.T) {
	// Same scenario, delivery order flipped: the larger-Total version is seen
	// first, a stale smaller-Total chunk arrives later. All chunks of the
	// current version are present, but the group still mixes two record
	// versions (the stale chunk overwrote Seq 0), so it must not be Complete.
	h := sampleHeader()
	short := Chunk(h, []byte(strings.Repeat("z", 1000)), 600)
	long := Chunk(h, []byte(strings.Repeat("yz", 2000)), 600)
	msgs := append(append([]Message{}, long...), short[0])
	recs := Reassemble(msgs)
	if len(recs) != 1 {
		t.Fatalf("got %d records, want 1", len(recs))
	}
	if recs[0].Complete {
		t.Error("mixed-Total group must never be Complete")
	}
	if recs[0].Header.Total != len(long) {
		t.Errorf("record Total = %d, want %d", recs[0].Header.Total, len(long))
	}
}

func TestReassembleFirstChunkLostReordered(t *testing.T) {
	// First chunk lost and the rest delivered in reverse: the record must be
	// incomplete, with the surviving chunks concatenated in Seq order.
	h := sampleHeader()
	content := []byte(strings.Repeat("0123456789", 500))
	msgs := Chunk(h, content, 600)
	rest := append([]Message{}, msgs[1:]...)
	for i, j := 0, len(rest)-1; i < j; i, j = i+1, j-1 {
		rest[i], rest[j] = rest[j], rest[i]
	}
	recs := Reassemble(rest)
	if len(recs) != 1 {
		t.Fatalf("got %d records, want 1", len(recs))
	}
	if recs[0].Complete {
		t.Error("record with a lost first chunk must be incomplete")
	}
	var want []byte
	for _, m := range msgs[1:] {
		want = append(want, m.Content...)
	}
	if !bytes.Equal(recs[0].Content, want) {
		t.Error("surviving chunks not concatenated in Seq order")
	}
}

func TestReassembleSeparatesTypesAndProcesses(t *testing.T) {
	h1 := sampleHeader()
	h2 := sampleHeader()
	h2.Type = TypeModules
	h3 := sampleHeader()
	h3.PID = 999 // different process, same everything else
	var msgs []Message
	msgs = append(msgs, Chunk(h1, []byte("objects"), 0)...)
	msgs = append(msgs, Chunk(h2, []byte("modules"), 0)...)
	msgs = append(msgs, Chunk(h3, []byte("objects2"), 0)...)
	recs := Reassemble(msgs)
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3", len(recs))
	}
}

func TestExecPIDReuseDistinguishedByHash(t *testing.T) {
	// Same PID, same second, different executable → different HASH field →
	// distinct records (the paper's exec() disambiguation).
	h1 := sampleHeader()
	h2 := sampleHeader()
	h2.Hash = "ffffffffffffffffffffffffffffffff"
	msgs := append(Chunk(h1, []byte("bash"), 0), Chunk(h2, []byte("a.out"), 0)...)
	recs := Reassemble(msgs)
	if len(recs) != 2 {
		t.Fatalf("exec-reused PID collapsed into %d record(s)", len(recs))
	}
	if recs[0].Header.ProcessKey() == recs[1].Header.ProcessKey() {
		t.Error("process keys must differ when the executable hash differs")
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(job, step, host string, pid uint16, tm int64, content []byte) bool {
		h := Header{
			JobID: sanitize(job), StepID: sanitize(step), PID: int(pid),
			Hash: "00ff", Host: sanitize(host), Time: tm,
			Layer: LayerSelf, Type: TypeMetadata, Seq: 0, Total: 1,
		}
		m := Message{Header: h, Content: content}
		got, err := Parse(Encode(m))
		if err != nil {
			return false
		}
		if len(content) == 0 && len(got.Content) == 0 {
			got.Content = content
		}
		return reflect.DeepEqual(got, m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// sanitize strips '|' and '=' which header fields may not contain (they are
// env-derived identifiers; siren.so applies the same restriction).
func sanitize(s string) string {
	s = strings.ReplaceAll(s, "|", "_")
	s = strings.ReplaceAll(s, "=", "_")
	if len(s) > 64 {
		s = s[:64]
	}
	return s
}

func TestChanTransport(t *testing.T) {
	tr := NewChanTransport(4)
	if err := tr.Send([]byte("one")); err != nil {
		t.Fatal(err)
	}
	got := <-tr.C()
	if string(got) != "one" {
		t.Errorf("got %q", got)
	}
	// Overflow drops.
	for i := 0; i < 10; i++ {
		tr.Send([]byte("x"))
	}
	if tr.Dropped != 6 {
		t.Errorf("Dropped = %d, want 6", tr.Dropped)
	}
	tr.Close()
	if err := tr.Send([]byte("after close")); err == nil {
		t.Error("send after close should fail")
	}
}

func TestLossyTransport(t *testing.T) {
	inner := NewChanTransport(100000)
	lossy := NewLossyTransport(inner, 0.1, 42)
	const n = 20000
	for i := 0; i < n; i++ {
		if err := lossy.Send([]byte("d")); err != nil {
			t.Fatal(err)
		}
	}
	rate := float64(lossy.Dropped) / n
	if rate < 0.08 || rate > 0.12 {
		t.Errorf("observed loss rate %.3f, want ~0.10", rate)
	}
	if lossy.Sent+lossy.Dropped != n {
		t.Error("sent+dropped != total")
	}
}

func TestUDPTransportLoopback(t *testing.T) {
	// Round-trip one datagram over a real UDP socket.
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	tr, err := DialUDP(pc.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	m := Message{Header: sampleHeader(), Content: []byte("over the wire")}
	if err := tr.Send(Encode(m)); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 65536)
	n, _, err := pc.ReadFrom(buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Parse(buf[:n])
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Content) != "over the wire" {
		t.Errorf("content = %q", got.Content)
	}
}

func BenchmarkEncodeParse(b *testing.B) {
	m := Message{Header: sampleHeader(), Content: bytes.Repeat([]byte("lib\n"), 100)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(Encode(m)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkChunkReassemble64K(b *testing.B) {
	h := sampleHeader()
	content := bytes.Repeat([]byte("y"), 64<<10)
	b.SetBytes(int64(len(content)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		recs := Reassemble(Chunk(h, content, MaxDatagram))
		if len(recs) != 1 || !recs[0].Complete {
			b.Fatal("bad reassembly")
		}
	}
}
