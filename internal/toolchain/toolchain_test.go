package toolchain

import (
	"bytes"
	"reflect"
	"testing"

	"siren/internal/elfx"
	"siren/internal/ssdeep"
)

var testSrc = Source{
	Name:      "icon",
	Version:   "2.6.4",
	Functions: []string{"icon_init", "icon_run_timestep", "icon_output", "icon_finalize"},
	Objects:   []string{"icon_grid", "icon_config"},
	Strings:   []string{"ICON atmospheric model", "NetCDF output enabled"},
	CodeKB:    64,
}

func compile(t *testing.T, src Source, opts BuildOptions) *Artifact {
	t.Helper()
	a, err := Compile(src, opts)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return a
}

func fuzzy(t *testing.T, data []byte) string {
	t.Helper()
	h, err := ssdeep.Hash(data)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func score(t *testing.T, a, b []byte) int {
	t.Helper()
	s, err := ssdeep.Compare(fuzzy(t, a), fuzzy(t, b))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestCompileDeterministic(t *testing.T) {
	opts := BuildOptions{Compilers: []Compiler{GCCSUSE}, Libraries: []string{"libm.so.6"}}
	a1 := compile(t, testSrc, opts)
	a2 := compile(t, testSrc, opts)
	if !bytes.Equal(a1.Binary, a2.Binary) {
		t.Error("identical builds differ")
	}
}

func TestCompileParsesAsELF(t *testing.T) {
	a := compile(t, testSrc, BuildOptions{
		Compilers: []Compiler{GCCSUSE, ClangCray},
		Libraries: []string{"libnetcdf.so.19", "libm.so.6"},
	})
	f, err := elfx.Parse(a.Binary)
	if err != nil {
		t.Fatalf("artifact is not valid ELF: %v", err)
	}
	if got := f.Comment(); !reflect.DeepEqual(got, a.Compilers) {
		t.Errorf("comment = %q, want %q", got, a.Compilers)
	}
	if got := f.Needed(); !reflect.DeepEqual(got, []string{"libnetcdf.so.19", "libm.so.6"}) {
		t.Errorf("needed = %q", got)
	}
	globals, err := f.GlobalSymbolNames()
	if err != nil {
		t.Fatal(err)
	}
	want := append(append([]string{}, testSrc.Functions...), testSrc.Objects...)
	if !reflect.DeepEqual(globals, want) {
		t.Errorf("globals = %q, want %q", globals, want)
	}
}

func TestStaticBinaryHasNoDynamic(t *testing.T) {
	a := compile(t, testSrc, BuildOptions{Compilers: []Compiler{GCCSUSE}, Static: true})
	f, err := elfx.Parse(a.Binary)
	if err != nil {
		t.Fatal(err)
	}
	if f.Needed() != nil {
		t.Errorf("static binary has DT_NEEDED: %q", f.Needed())
	}
	if f.SectionByType(elfx.SHTDynamic) != nil {
		t.Error("static binary has a .dynamic section")
	}
}

func TestStrippedBinaryHasNoSymbols(t *testing.T) {
	a := compile(t, testSrc, BuildOptions{Compilers: []Compiler{GCCSUSE}, Stripped: true})
	f, err := elfx.Parse(a.Binary)
	if err != nil {
		t.Fatal(err)
	}
	syms, err := f.Symbols()
	if err != nil {
		t.Fatal(err)
	}
	if len(syms) != 0 {
		t.Errorf("stripped binary has %d symbols", len(syms))
	}
}

func TestDefaultLibcWhenDynamic(t *testing.T) {
	a := compile(t, testSrc, BuildOptions{Compilers: []Compiler{GCCSUSE}})
	f, err := elfx.Parse(a.Binary)
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Needed(); !reflect.DeepEqual(got, []string{"libc.so.6"}) {
		t.Errorf("needed = %q, want implicit libc", got)
	}
}

// The similarity ladder underpinning Table 7: identical builds score 100,
// recompiles score very high, version bumps high, mutated builds lower,
// different software near zero.
func TestSimilarityLadder(t *testing.T) {
	base := compile(t, testSrc, BuildOptions{Compilers: []Compiler{GCCSUSE}})

	recompiled := compile(t, testSrc, BuildOptions{Compilers: []Compiler{ClangCray}})
	sRecompile := score(t, base.Binary, recompiled.Binary)

	bumped := testSrc
	bumped.Version = "2.6.5"
	sVersion := score(t, base.Binary, compile(t, bumped, BuildOptions{Compilers: []Compiler{GCCSUSE}}).Binary)

	mutated := compile(t, testSrc, BuildOptions{Compilers: []Compiler{GCCSUSE}, Mutations: 120})
	sMutated := score(t, base.Binary, mutated.Binary)

	other := Source{Name: "gromacs", Version: "2024.1",
		Functions: []string{"gmx_mdrun", "gmx_grompp"}, CodeKB: 64}
	sOther := score(t, base.Binary, compile(t, other, BuildOptions{Compilers: []Compiler{GCCSUSE}}).Binary)

	if s := score(t, base.Binary, base.Binary); s != 100 {
		t.Errorf("self score = %d", s)
	}
	if sRecompile < 70 {
		t.Errorf("recompile score = %d, want >= 70", sRecompile)
	}
	if sVersion < 50 {
		t.Errorf("version-bump score = %d, want >= 50", sVersion)
	}
	if sMutated >= sRecompile {
		t.Errorf("mutated (%d) should score below recompiled (%d)", sMutated, sRecompile)
	}
	if sOther > 5 {
		t.Errorf("unrelated software score = %d, want <= 5", sOther)
	}
	t.Logf("ladder: recompile=%d version=%d mutated=%d other=%d", sRecompile, sVersion, sMutated, sOther)
}

func TestCompilerLabels(t *testing.T) {
	cases := []struct {
		c    Compiler
		want string
	}{
		{GCCSUSE, "GCC [SUSE]"},
		{GCCRedHat, "GCC [Red Hat]"},
		{ClangCray, "clang [Cray]"},
		{LLDAMD, "LLD [AMD]"},
		{Rustc, "rustc"},
	}
	for _, c := range cases {
		if got := c.c.Label(); got != c.want {
			t.Errorf("Label(%+v) = %q, want %q", c.c, got, c.want)
		}
		// Comment string must round-trip back to the label.
		if got := ParseCommentLabel(c.c.CommentString()); got != c.want {
			t.Errorf("ParseCommentLabel(%q) = %q, want %q", c.c.CommentString(), got, c.want)
		}
	}
}

func TestNoCompilersRejected(t *testing.T) {
	if _, err := Compile(testSrc, BuildOptions{}); err == nil {
		t.Error("Compile without compilers must fail")
	}
}

func TestExtraTagAppears(t *testing.T) {
	a := compile(t, testSrc, BuildOptions{Compilers: []Compiler{GCCSUSE}, ExtraTag: "XALT watermark 2.10"})
	f, err := elfx.Parse(a.Binary)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range f.Comment() {
		if c == "XALT watermark 2.10" {
			found = true
		}
	}
	if !found {
		t.Errorf("extra tag missing from comment: %q", f.Comment())
	}
}

func TestRodataContainsDeclaredStrings(t *testing.T) {
	a := compile(t, testSrc, BuildOptions{Compilers: []Compiler{GCCSUSE}, Libraries: []string{"libnetcdf.so.19"}})
	f, err := elfx.Parse(a.Binary)
	if err != nil {
		t.Fatal(err)
	}
	ro := f.Section(".rodata")
	if ro == nil {
		t.Fatal("no .rodata")
	}
	for _, want := range []string{"icon version 2.6.4", "ICON atmospheric model", "libnetcdf.so.19"} {
		if !bytes.Contains(ro.Data, []byte(want)) {
			t.Errorf(".rodata missing %q", want)
		}
	}
}

func TestMoreMutationsLowerSimilarity(t *testing.T) {
	base := compile(t, testSrc, BuildOptions{Compilers: []Compiler{GCCSUSE}})
	prev := 101
	for _, m := range []int{0, 50, 200, 800} {
		a := compile(t, testSrc, BuildOptions{Compilers: []Compiler{GCCSUSE}, Mutations: m})
		s := score(t, base.Binary, a.Binary)
		if s > prev {
			t.Errorf("mutations=%d score %d > previous %d (not monotone)", m, s, prev)
		}
		prev = s
	}
}

func BenchmarkCompile64K(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Compile(testSrc, BuildOptions{Compilers: []Compiler{GCCSUSE, ClangCray}}); err != nil {
			b.Fatal(err)
		}
	}
}
