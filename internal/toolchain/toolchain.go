// Package toolchain simulates the compiler toolchains that produce HPC
// application executables.
//
// The paper's evaluation depends on two properties of real builds that this
// package reproduces synthetically:
//
//  1. Compilers record an identification string in the ELF .comment section
//     ("GCC: (SUSE Linux) 13.3.0"); executables assembled from objects built
//     by different toolchains accumulate several such strings (Table 6).
//  2. Rebuilding the same source with a different compiler, version, or flag
//     set yields a *mostly similar* binary: large stretches of machine code
//     survive unchanged while call sites, scheduling, and literals shift.
//     That is exactly the structure SSDeep fuzzy hashing exploits (Table 7).
//
// Compile is deterministic: identical (Source, BuildOptions) pairs produce
// byte-identical artifacts, and near-identical inputs produce mostly
// overlapping code, with divergence growing monotonically with source-level
// distance (version bumps, code mutations) and, more weakly, with toolchain
// changes.
package toolchain

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"siren/internal/elfx"
	"siren/internal/xxhash"
)

// Compiler identifies one toolchain: the tool plus the provenance of the
// build that shipped it (the paper distinguishes e.g. "GCC [SUSE]" from
// "GCC [Red Hat]").
type Compiler struct {
	Name       string // "GCC", "clang", "LLD", "rustc"
	Provenance string // "SUSE", "AMD", "Cray", "Red Hat", "conda", "HPE", ""
	Version    string // "13.3.0"
}

// Well-known toolchains appearing in the paper's Table 6 and Figure 4.
var (
	GCCSUSE   = Compiler{Name: "GCC", Provenance: "SUSE", Version: "13.3.0"}
	GCCRedHat = Compiler{Name: "GCC", Provenance: "Red Hat", Version: "11.4.1"}
	GCCConda  = Compiler{Name: "GCC", Provenance: "conda", Version: "12.4.0"}
	GCCHPE    = Compiler{Name: "GCC", Provenance: "HPE", Version: "12.2.0"}
	ClangCray = Compiler{Name: "clang", Provenance: "Cray", Version: "17.0.1"}
	ClangAMD  = Compiler{Name: "clang", Provenance: "AMD", Version: "17.0.0"}
	LLDAMD    = Compiler{Name: "LLD", Provenance: "AMD", Version: "17.0.0"}
	Rustc     = Compiler{Name: "rustc", Provenance: "", Version: "1.77.0"}
)

// Label renders the compiler in the paper's "Name [Provenance]" table form.
func (c Compiler) Label() string {
	if c.Provenance == "" {
		return c.Name
	}
	return c.Name + " [" + c.Provenance + "]"
}

// CommentString renders the .comment record this toolchain would leave in an
// executable, in the style of the respective real tool.
func (c Compiler) CommentString() string {
	switch c.Name {
	case "GCC":
		prov := c.Provenance
		if prov == "SUSE" {
			prov = "SUSE Linux"
		}
		return fmt.Sprintf("GCC: (%s) %s", prov, c.Version)
	case "clang":
		return fmt.Sprintf("clang version %s (%s Inc.)", c.Version, c.Provenance)
	case "LLD":
		return fmt.Sprintf("Linker: LLD %s (%s)", c.Version, c.Provenance)
	case "rustc":
		return fmt.Sprintf("rustc version %s", c.Version)
	default:
		return fmt.Sprintf("%s %s (%s)", c.Name, c.Version, c.Provenance)
	}
}

// ParseCommentLabel maps a .comment record back to the "Name [Provenance]"
// label, the inverse of CommentString as used by the analysis layer.
func ParseCommentLabel(comment string) string {
	switch {
	case strings.HasPrefix(comment, "GCC: ("):
		prov := comment[len("GCC: ("):strings.Index(comment, ")")]
		if prov == "SUSE Linux" {
			prov = "SUSE"
		}
		return "GCC [" + prov + "]"
	case strings.HasPrefix(comment, "clang version"):
		i := strings.Index(comment, "(")
		j := strings.Index(comment, " Inc.)")
		if i >= 0 && j > i {
			return "clang [" + comment[i+1:j] + "]"
		}
		return "clang"
	case strings.HasPrefix(comment, "Linker: LLD"):
		i := strings.Index(comment, "(")
		j := strings.LastIndex(comment, ")")
		if i >= 0 && j > i {
			return "LLD [" + comment[i+1:j] + "]"
		}
		return "LLD"
	case strings.HasPrefix(comment, "rustc version"):
		return "rustc"
	default:
		return comment
	}
}

// Source is a synthetic source package: the stable identity from which
// machine code is generated. Two sources with the same Name and Functions
// but different Version share most generated code.
type Source struct {
	Name      string   // software name, e.g. "icon"
	Version   string   // release string, e.g. "2.6.4"
	Functions []string // global function names (become SYMBOLS_H input)
	Objects   []string // global data names
	Strings   []string // additional .rodata strings (become STRINGS_H input)
	CodeKB    int      // approximate .text size in KiB (default 32)
}

// BuildOptions steer one compilation of a Source.
type BuildOptions struct {
	Compilers []Compiler // contributing toolchains, in link order (≥1)
	OptLevel  int        // 0-3; perturbs instruction selection slightly
	Mutations int        // simulated local source edits since the pristine Version
	Libraries []string   // DT_NEEDED sonames recorded by the link editor
	Static    bool       // static link: no .dynamic section at all
	Stripped  bool       // drop the symbol table (nm would print nothing)
	ExtraTag  string     // extra .comment record (e.g. a wrapper's watermark)
}

// Artifact is the result of a Compile.
type Artifact struct {
	Binary    []byte   // complete ELF64 image
	Compilers []string // .comment records, in order
	Needed    []string // DT_NEEDED sonames
	Symbols   []string // global symbol names
}

// Compile deterministically "builds" src with opts into an ELF artifact.
func Compile(src Source, opts BuildOptions) (*Artifact, error) {
	if len(opts.Compilers) == 0 {
		return nil, fmt.Errorf("toolchain: no compilers given for %q", src.Name)
	}
	codeKB := src.CodeKB
	if codeKB <= 0 {
		codeKB = 32
	}
	funcs := src.Functions
	if len(funcs) == 0 {
		funcs = []string{"main"}
	}

	text := generateText(src, opts, codeKB<<10, funcs)
	rodata := generateRodata(src, opts)

	b := elfx.NewBuilder(elfx.ETExec, elfx.EMX8664)
	b.SetEntry(0x401000)
	b.SetText(text)
	b.SetRodata(rodata)

	var comments []string
	for _, c := range opts.Compilers {
		comments = append(comments, c.CommentString())
	}
	if opts.ExtraTag != "" {
		comments = append(comments, opts.ExtraTag)
	}
	b.SetComment(comments...)

	if !opts.Static {
		for _, lib := range opts.Libraries {
			b.AddNeeded(lib)
		}
		if len(opts.Libraries) == 0 {
			// Every dynamically linked executable needs at least libc.
			b.AddNeeded("libc.so.6")
		}
	}

	var symNames []string
	if !opts.Stripped {
		addr := uint64(0x401000)
		for _, fn := range funcs {
			size := uint64(64 + xxhash.Sum64String(fn)%448)
			b.AddGlobalFunc(fn, addr, size)
			symNames = append(symNames, fn)
			addr += size
		}
		for _, obj := range src.Objects {
			size := uint64(8 + xxhash.Sum64String(obj)%120)
			b.AddGlobalObject(obj, addr, size)
			symNames = append(symNames, obj)
			addr += size
		}
		// A couple of deterministic local symbols so the global filter has
		// something to exclude.
		b.AddLocalFunc("static_init_"+src.Name, addr, 16)
		b.AddLocalFunc("static_fini_"+src.Name, addr+16, 16)
	}

	img, err := b.Bytes()
	if err != nil {
		return nil, fmt.Errorf("toolchain: building %s: %w", src.Name, err)
	}
	needed := opts.Libraries
	if !opts.Static && len(needed) == 0 {
		needed = []string{"libc.so.6"}
	}
	if opts.Static {
		needed = nil
	}
	return &Artifact{
		Binary:    img,
		Compilers: comments,
		Needed:    needed,
		Symbols:   symNames,
	}, nil
}

// generateText produces the synthetic machine code. The layout is a
// concatenation of per-function blocks whose bytes derive only from the
// function name and the source name — so rebuilding with a different
// compiler/version preserves most bytes — followed by small deterministic
// perturbation passes for version, toolchain, optimisation level, and local
// mutations.
func generateText(src Source, opts BuildOptions, size int, funcs []string) []byte {
	text := make([]byte, size)
	block := size / len(funcs)
	if block == 0 {
		block = size
	}
	for i, fn := range funcs {
		lo := i * block
		hi := lo + block
		if i == len(funcs)-1 || hi > size {
			hi = size
		}
		seed := int64(xxhash.Sum64String(src.Name + "\x00" + fn))
		fillPseudoCode(text[lo:hi], seed)
	}

	// Version drift: each version string hashes to its own perturbation
	// pattern touching ~4% of bytes. Different versions therefore diverge
	// from the pristine build and from each other, but stay ~92% similar.
	perturb(text, int64(xxhash.Sum64String("v\x00"+src.Name+"\x00"+src.Version)), 0.04)

	// Toolchain fingerprint: ~1.5% of bytes per contributing compiler —
	// enough to change FILE_H, small enough to keep high similarity.
	for _, c := range opts.Compilers {
		perturb(text, int64(xxhash.Sum64String("c\x00"+c.Label()+c.Version)), 0.015)
	}
	if opts.OptLevel > 0 {
		perturb(text, int64(xxhash.Sum64String(fmt.Sprintf("O%d", opts.OptLevel))), 0.01*float64(opts.OptLevel))
	}

	// Local source edits: mutations rewrite 64-byte basic blocks, but real
	// edits cluster in a few touched functions rather than scattering across
	// the whole image — scattering would defeat fuzzy hashing in a way real
	// code changes do not. One cluster per ~32 mutations.
	if opts.Mutations > 0 && size >= 64 {
		rng := rand.New(rand.NewSource(int64(xxhash.Sum64String(
			fmt.Sprintf("m\x00%s\x00%s\x00%d", src.Name, src.Version, opts.Mutations)))))
		clusters := 1 + opts.Mutations/32
		perCluster := opts.Mutations * 64 / clusters
		for c := 0; c < clusters; c++ {
			n := perCluster
			if n > size-1 {
				n = size - 1
			}
			at := rng.Intn(size - n)
			rng.Read(text[at : at+n])
		}
	}
	return text
}

// fillPseudoCode writes x86-flavoured filler: repeated multi-byte opcode
// templates with hash-derived operands, giving the byte stream the local
// self-similarity of real object code rather than uniform noise.
func fillPseudoCode(dst []byte, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	templates := [][]byte{
		{0x55},                         // push rbp
		{0x48, 0x89, 0xE5},             // mov rbp,rsp
		{0x48, 0x83, 0xEC, 0x00},       // sub rsp,imm8
		{0x48, 0x8B, 0x00},             // mov r,[r]
		{0xE8, 0x00, 0x00, 0x00, 0x00}, // call rel32
		{0x0F, 0x1F, 0x40, 0x00},       // nop dword
		{0xC3},                         // ret
		{0x48, 0x01, 0x00},             // add r,r
		{0x89, 0x00},                   // mov r32,r32
	}
	i := 0
	for i < len(dst) {
		t := templates[rng.Intn(len(templates))]
		n := copy(dst[i:], t)
		// Patch operand placeholders with seeded bytes.
		for j := 0; j < n; j++ {
			if dst[i+j] == 0x00 {
				dst[i+j] = byte(rng.Intn(256))
			}
		}
		i += n
	}
}

// perturb rewrites approximately frac of dst, concentrated in a handful of
// contiguous regions chosen by the seeded generator. Build-to-build
// differences in real binaries are clustered (changed functions, relocated
// literal pools), not uniformly scattered; clustering is what lets CTPH
// chunks away from the changes survive and keep the similarity score high.
func perturb(dst []byte, seed int64, frac float64) {
	if frac <= 0 || len(dst) < 64 {
		return
	}
	total := int(float64(len(dst)) * frac)
	if total < 16 {
		total = 16
	}
	regions := 2 + int(frac*60) // ~3 regions at 1.5%, ~4-5 at 4%
	per := total / regions
	if per < 16 {
		per = 16
	}
	rng := rand.New(rand.NewSource(seed))
	for r := 0; r < regions; r++ {
		n := per
		if n > len(dst)-1 {
			n = len(dst) - 1
		}
		at := rng.Intn(len(dst) - n)
		rng.Read(dst[at : at+n])
	}
}

// generateRodata assembles the printable strings the binary carries: the
// version banner, the declared strings, library name references, and a
// per-compiler runtime tag. This is the STRINGS_H input.
func generateRodata(src Source, opts BuildOptions) []byte {
	var parts []string
	parts = append(parts, fmt.Sprintf("%s version %s", src.Name, src.Version))
	parts = append(parts, src.Strings...)
	libs := append([]string(nil), opts.Libraries...)
	sort.Strings(libs)
	parts = append(parts, libs...)
	for _, c := range opts.Compilers {
		parts = append(parts, c.Label()+" runtime")
	}
	parts = append(parts, "usage: "+src.Name+" [options] <input>")
	var sb strings.Builder
	for _, p := range parts {
		sb.WriteString(p)
		sb.WriteByte(0)
	}
	return []byte(sb.String())
}
