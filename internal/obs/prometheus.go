// Prometheus text-format exposition (version 0.0.4): the format every
// scraper understands and a human can read with curl. Families are emitted
// in name order, children in registration order, so the output is
// deterministic and golden-testable.

package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"
)

// WritePrometheus renders every registered family in the Prometheus text
// exposition format. Histograms emit the standard cumulative
// _bucket{le=...} / _sum / _count triple; empty buckets are skipped (the
// format permits sparse buckets, and 65 log₂ buckets would otherwise bury
// the signal), with the mandatory le="+Inf" bucket always present.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.sortedFamilies() {
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		for _, e := range f.entries {
			switch {
			case e.counter != nil:
				fmt.Fprintf(bw, "%s%s %d\n", f.name, renderLabels(e.labels, "", 0), e.counter.Value())
			case e.gauge != nil:
				fmt.Fprintf(bw, "%s%s %d\n", f.name, renderLabels(e.labels, "", 0), e.gauge.Value())
			case e.gfunc != nil:
				fmt.Fprintf(bw, "%s%s %d\n", f.name, renderLabels(e.labels, "", 0), e.gfunc())
			case e.hist != nil:
				writeHistogram(bw, f.name, e)
			}
		}
	}
	return bw.Flush()
}

// writeHistogram emits the cumulative bucket series for one labeled child.
func writeHistogram(w io.Writer, name string, e *entry) {
	h := e.hist
	var cum uint64
	for i := range h.buckets {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		cum += n
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, renderLabels(e.labels, "le", float64(bucketUpper(i))), cum)
	}
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, renderLabels(e.labels, "le", math.Inf(1)), cum)
	fmt.Fprintf(w, "%s_sum%s %d\n", name, renderLabels(e.labels, "", 0), h.sum.Load())
	fmt.Fprintf(w, "%s_count%s %d\n", name, renderLabels(e.labels, "", 0), cum)
}

// renderLabels renders {k="v",...}, appending an le label when leKey is
// non-empty. Returns "" for an unlabeled metric.
func renderLabels(labels []Label, leKey string, le float64) string {
	if len(labels) == 0 && leKey == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	if leKey != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(leKey)
		b.WriteString(`="`)
		if math.IsInf(le, 1) {
			b.WriteString("+Inf")
		} else {
			// Bucket bounds are exact small-ish integers; %g keeps them
			// readable (no trailing zeros) and parseable as floats.
			fmt.Fprintf(&b, "%g", le)
		}
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func escapeLabel(v string) string { return labelEscaper.Replace(v) }

var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

func escapeHelp(v string) string { return helpEscaper.Replace(v) }

// Handler returns the GET /metrics handler: the registry rendered in the
// Prometheus text format. It is a plain http.Handler for callers to mount
// on their own mux — obs never touches http.DefaultServeMux.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		// Error means the client went away mid-write; nothing to do.
		_ = r.WritePrometheus(w)
	})
}
