package obs

import (
	"encoding/json"
	"io"
	"math"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	r := NewRegistry("test")
	c := r.Counter("siren_test_total", "help")
	c.Inc()
	c.Add(41)
	c.Add(-5) // ignored: counters are monotone
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	if again := r.Counter("siren_test_total", "help"); again != c {
		t.Fatalf("re-registration returned a different counter")
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry("test")
	g := r.Gauge("siren_depth", "help")
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
}

func TestNilSafety(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(1)
	g.Set(1)
	g.Add(1)
	h.Record(1)
	h.Observe(time.Second)
	h.Since(time.Now())
	if c.Value() != 0 || g.Value() != 0 {
		t.Fatal("nil instruments must read zero")
	}
	if s := h.Snapshot(); s.Count != 0 || s.P99 != 0 {
		t.Fatalf("nil histogram snapshot = %+v, want zero", s)
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry("test")
	r.Counter("siren_x", "")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind mismatch")
		}
	}()
	r.Gauge("siren_x", "")
}

func TestRegistryBadNamePanics(t *testing.T) {
	r := NewRegistry("test")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on invalid metric name")
		}
	}()
	r.Counter("siren bad name", "")
}

func TestHistogramSnapshot(t *testing.T) {
	r := NewRegistry("test")
	h := r.Histogram("siren_lat_ns", "help")
	// 90 fast samples, 9 medium, 1 slow: p50 lands in the fast bucket,
	// p99 in the slow one.
	for i := 0; i < 90; i++ {
		h.Record(100) // bucket bit-len 7 → upper bound 127
	}
	for i := 0; i < 9; i++ {
		h.Record(1000) // bit-len 10 → upper 1023
	}
	h.Record(100000) // bit-len 17 → upper 131071

	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d, want 100", s.Count)
	}
	if want := int64(90*100 + 9*1000 + 100000); s.Sum != want {
		t.Fatalf("sum = %d, want %d", s.Sum, want)
	}
	if s.Max != 100000 {
		t.Fatalf("max = %d, want 100000", s.Max)
	}
	if s.P50 != 127 {
		t.Fatalf("p50 = %d, want 127", s.P50)
	}
	if s.P90 != 127 {
		t.Fatalf("p90 = %d, want 127 (rank 90 is the last fast sample)", s.P90)
	}
	if s.P99 != 1023 {
		t.Fatalf("p99 = %d, want 1023", s.P99)
	}
	// The estimate never exceeds the true max even in the top bucket.
	if q := clampMax(quantile(&[histBuckets]uint64{64: 1}, 1, 0.99), 50); q != 50 {
		t.Fatalf("clamped quantile = %d, want 50", q)
	}
}

func TestHistogramNegativeClamps(t *testing.T) {
	r := NewRegistry("test")
	h := r.Histogram("siren_neg_ns", "")
	h.Record(-5)
	s := h.Snapshot()
	if s.Count != 1 || s.Sum != 0 || s.Max != 0 {
		t.Fatalf("negative sample snapshot = %+v, want count=1 sum=0 max=0", s)
	}
}

func TestBucketBounds(t *testing.T) {
	if bucketUpper(0) != 0 {
		t.Fatalf("bucketUpper(0) = %d", bucketUpper(0))
	}
	if bucketUpper(1) != 1 || bucketUpper(7) != 127 {
		t.Fatal("small bucket bounds wrong")
	}
	if bucketUpper(64) != math.MaxInt64 {
		t.Fatalf("top bucket must be open-ended, got %d", bucketUpper(64))
	}
}

// TestPrometheusGolden pins the full text exposition byte for byte: family
// ordering, HELP/TYPE lines, label rendering, sparse cumulative histogram
// buckets, and the mandatory +Inf bucket.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry("golden")
	r.Counter("siren_ingest_total", "datagrams ingested", L("shard", "0")).Add(7)
	r.Counter("siren_ingest_total", "datagrams ingested", L("shard", "1")).Add(3)
	r.Gauge("siren_queue_depth", "pending datagrams").Set(5)
	r.GaugeFunc("siren_up", "always one", func() int64 { return 1 })
	h := r.Histogram("siren_insert_ns", "insert latency")
	h.Record(3) // bit-len 2 → le 3
	h.Record(3)
	h.Record(100) // bit-len 7 → le 127

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP siren_ingest_total datagrams ingested
# TYPE siren_ingest_total counter
siren_ingest_total{shard="0"} 7
siren_ingest_total{shard="1"} 3
# HELP siren_insert_ns insert latency
# TYPE siren_insert_ns histogram
siren_insert_ns_bucket{le="3"} 2
siren_insert_ns_bucket{le="127"} 3
siren_insert_ns_bucket{le="+Inf"} 3
siren_insert_ns_sum 106
siren_insert_ns_count 3
# HELP siren_queue_depth pending datagrams
# TYPE siren_queue_depth gauge
siren_queue_depth 5
# HELP siren_up always one
# TYPE siren_up gauge
siren_up 1
`
	if b.String() != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", b.String(), want)
	}
}

// promNameRe / promLineRe implement the text-format grammar for the
// validation test: every non-comment line must be name{labels} value.
var (
	promNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	promLineRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{([^}]*)\})? (\S+)$`)
	promLblRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"$`)
)

// validatePromText parses every line of a text exposition, failing on any
// grammar violation, and returns the set of family names seen in samples.
func validatePromText(t *testing.T, text string) map[string]bool {
	t.Helper()
	fams := make(map[string]bool)
	typed := make(map[string]string)
	for ln, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "), strings.HasPrefix(line, "# TYPE "):
			parts := strings.SplitN(line, " ", 4)
			if len(parts) < 3 || !promNameRe.MatchString(parts[2]) {
				t.Fatalf("line %d: bad comment %q", ln+1, line)
			}
			if parts[1] == "TYPE" {
				if len(parts) != 4 {
					t.Fatalf("line %d: TYPE missing kind: %q", ln+1, line)
				}
				switch parts[3] {
				case "counter", "gauge", "histogram":
				default:
					t.Fatalf("line %d: unknown TYPE %q", ln+1, parts[3])
				}
				typed[parts[2]] = parts[3]
			}
		case line == "":
			t.Fatalf("line %d: blank line in exposition", ln+1)
		default:
			m := promLineRe.FindStringSubmatch(line)
			if m == nil {
				t.Fatalf("line %d: unparseable sample %q", ln+1, line)
			}
			name := m[1]
			if m[3] != "" {
				for _, pair := range splitLabels(m[3]) {
					if !promLblRe.MatchString(pair) {
						t.Fatalf("line %d: bad label %q", ln+1, pair)
					}
				}
			}
			if _, err := strconv.ParseFloat(strings.TrimPrefix(m[4], "+"), 64); err != nil && m[4] != "+Inf" {
				t.Fatalf("line %d: bad value %q", ln+1, m[4])
			}
			// Map histogram series back to their family name.
			for _, suf := range []string{"_bucket", "_sum", "_count"} {
				base := strings.TrimSuffix(name, suf)
				if base != name && typed[base] == "histogram" {
					name = base
					break
				}
			}
			if typed[name] == "" {
				t.Fatalf("line %d: sample %q has no preceding TYPE", ln+1, line)
			}
			fams[name] = true
		}
	}
	return fams
}

// splitLabels splits `k="v",k2="v2"` on commas outside quotes.
func splitLabels(s string) []string {
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			if i == 0 || s[i-1] != '\\' {
				depth = !depth
			}
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	return append(out, s[start:])
}

// TestPrometheusGrammar registers one of everything, scrapes the Handler,
// and validates every emitted line against the text-format grammar,
// asserting all registered families appear.
func TestPrometheusGrammar(t *testing.T) {
	r := NewRegistry("grammar")
	r.Counter("siren_a_total", "a", L("shard", "0")).Inc()
	r.Gauge("siren_b_depth", "with \"quotes\" and \\slash", L("path", `C:\tmp`)).Set(-3)
	r.GaugeFunc("siren_c", "c", func() int64 { return 9 })
	h := r.Histogram("siren_d_ns", "d", L("phase", "write-runs"))
	for i := int64(1); i < 1_000_000; i *= 3 {
		h.Record(i)
	}
	r.Histogram("siren_empty_ns", "never recorded") // still must expose

	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("content-type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	b := string(body)
	fams := validatePromText(t, b)
	for _, want := range []string{"siren_a_total", "siren_b_depth", "siren_c", "siren_d_ns", "siren_empty_ns"} {
		if want == "siren_empty_ns" {
			// An empty histogram has only the +Inf bucket, _sum, _count.
			continue
		}
		if !fams[want] {
			t.Fatalf("family %s missing from exposition:\n%s", want, b)
		}
	}
	if !strings.Contains(b, `siren_empty_ns_bucket{le="+Inf"} 0`) {
		t.Fatalf("empty histogram must still emit +Inf bucket:\n%s", b)
	}
}

func TestExpvarBridge(t *testing.T) {
	r := NewRegistry("bridge")
	r.Counter("siren_n_total", "").Add(4)
	r.Gauge("siren_g", "", L("shard", "2")).Set(8)
	h := r.Histogram("siren_h_ns", "")
	h.Record(1024)

	var m map[string]any
	if err := json.Unmarshal([]byte(r.Expvar().String()), &m); err != nil {
		t.Fatalf("expvar bridge emitted invalid JSON: %v", err)
	}
	if m["siren_n_total"] != float64(4) {
		t.Fatalf("counter via expvar = %v", m["siren_n_total"])
	}
	if m[`siren_g{shard="2"}`] != float64(8) {
		t.Fatalf("labeled gauge via expvar = %v (keys %v)", m[`siren_g{shard="2"}`], m)
	}
	hist, ok := m["siren_h_ns"].(map[string]any)
	if !ok {
		t.Fatalf("histogram via expvar = %T", m["siren_h_ns"])
	}
	if hist["count"] != float64(1) || hist["sum"] != float64(1024) || hist["max"] != float64(1024) {
		t.Fatalf("histogram summary = %v", hist)
	}
}

// TestConcurrentRecord hammers one histogram and one counter from many
// goroutines while snapshots and expositions run concurrently — the -race
// proof that the record path takes no locks it needs.
func TestConcurrentRecord(t *testing.T) {
	r := NewRegistry("race")
	h := r.Histogram("siren_race_ns", "")
	c := r.Counter("siren_race_total", "")
	g := r.Gauge("siren_race_depth", "")

	const workers = 8
	const perWorker = 10000
	stop := make(chan struct{})
	var reader sync.WaitGroup
	reader.Add(1)
	go func() { // concurrent reader: snapshots + full expositions
		defer reader.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = h.Snapshot()
			var b strings.Builder
			_ = r.WritePrometheus(&b)
			_ = r.Expvar().String()
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			for i := int64(0); i < perWorker; i++ {
				h.Record(seed*1000 + i)
				c.Inc()
				g.Add(1)
			}
		}(int64(w))
	}
	// Registration from another goroutine must also be safe.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			r.Counter("siren_late_total", "", L("i", strconv.Itoa(i%4))).Inc()
		}
	}()
	wg.Wait()
	close(stop)
	reader.Wait()

	if got := c.Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	s := h.Snapshot()
	if s.Count != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", s.Count, workers*perWorker)
	}
}
