// Package obs is the zero-dependency metrics core shared by every siren
// serving tier: atomic counters, gauges, and log-bucketed histograms with
// percentile snapshots, grouped under a named Registry.
//
// There are no package-level globals and nothing is registered on the
// process-wide expvar or http.DefaultServeMux registries — a Registry is an
// ordinary value owned by whoever created it, so several can coexist in one
// process (mirroring the server's unregistered expvar map; the nodefaultmux
// lint rule enforces the same contract here). Exposition is pull-based:
// WritePrometheus / Handler render the Prometheus text format for a
// GET /metrics endpoint, and Expvar bridges the same instruments into the
// /debug/vars JSON shape the existing tooling already scrapes.
//
// Recording on the hot path is lock-free and allocation-free: counters and
// gauges are single atomics, and Histogram.Record is three atomic adds plus
// a CAS-bounded max — no mutex, no map lookup, no allocation. Registration
// (Registry.Counter, .Histogram, ...) takes a mutex and may allocate; do it
// once at construction time and keep the returned pointer. All instrument
// methods are nil-receiver safe, so optional instrumentation sites can hold
// a nil *Histogram and skip recording without branching at every call.
package obs

import (
	"fmt"
	"math"
	"math/bits"
	"regexp"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// A Label is one key="value" pair attached to an instrument at registration
// time. Labels distinguish instruments within a family (same name, e.g. one
// queue-depth gauge per writer shard); they are constant for the lifetime of
// the instrument — there is no per-record label API, which is what keeps the
// record path allocation-free.
type Label struct {
	Key, Value string
}

// L is shorthand for Label{k, v} at registration call sites.
func L(k, v string) Label { return Label{Key: k, Value: v} }

var (
	nameRe  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// kind is the exposition type of a family; every instrument in a family
// shares one kind, enforced at registration.
type kind string

const (
	kindCounter   kind = "counter"
	kindGauge     kind = "gauge"
	kindHistogram kind = "histogram"
)

// A Registry is a named, self-contained set of instruments. The name is
// informational (it appears in error messages and the expvar bridge), not a
// metric-name prefix. Methods are safe for concurrent use.
type Registry struct {
	name string

	mu   sync.Mutex
	fams map[string]*family
}

// family groups every instrument sharing one metric name: one HELP/TYPE
// header, N labeled children.
type family struct {
	name    string
	help    string
	kind    kind
	entries []*entry // registration order; exposition preserves it
}

// entry is one labeled instrument inside a family. Exactly one of the
// instrument fields is set, matching the family kind.
type entry struct {
	labels []Label
	sig    string // canonical label signature, for idempotent registration

	counter *Counter
	gauge   *Gauge
	gfunc   func() int64
	hist    *Histogram
}

// NewRegistry returns an empty registry. name identifies the owning process
// or subsystem (e.g. "siren-receiver") in diagnostics and the expvar bridge.
func NewRegistry(name string) *Registry {
	return &Registry{name: name, fams: make(map[string]*family)}
}

// Name returns the registry's name.
func (r *Registry) Name() string { return r.name }

// labelSig canonicalizes a label set for duplicate detection: sorted by key,
// rendered as the exposition string. Registration-time only.
func labelSig(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	sig := ""
	for _, l := range ls {
		sig += l.Key + "=" + l.Value + ","
	}
	return sig
}

// register finds or creates the (name, labels) entry of the given kind.
// Registering the same name+labels twice returns the existing entry, so
// independent components can share one instrument; re-registering a name
// with a different kind or a malformed name panics — both are programmer
// errors, caught at construction time, never on the record path.
func (r *Registry) register(name, help string, k kind, labels []Label) *entry {
	if !nameRe.MatchString(name) {
		panic(fmt.Sprintf("obs: registry %q: invalid metric name %q", r.name, name))
	}
	for _, l := range labels {
		if !labelRe.MatchString(l.Key) {
			panic(fmt.Sprintf("obs: registry %q: metric %q: invalid label key %q", r.name, name, l.Key))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fams[name]
	if f == nil {
		f = &family{name: name, help: help, kind: k}
		r.fams[name] = f
	}
	if f.kind != k {
		panic(fmt.Sprintf("obs: registry %q: metric %q registered as %s, re-registered as %s", r.name, name, f.kind, k))
	}
	sig := labelSig(labels)
	for _, e := range f.entries {
		if e.sig == sig {
			return e
		}
	}
	e := &entry{labels: append([]Label(nil), labels...), sig: sig}
	f.entries = append(f.entries, e)
	return e
}

// sortedFamilies snapshots the families in name order for deterministic
// exposition.
func (r *Registry) sortedFamilies() []*family {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

// ---- Counter ----

// A Counter is a monotonically increasing value. The zero value is unusable;
// obtain one from Registry.Counter. All methods are nil-safe no-ops.
type Counter struct {
	v atomic.Int64
}

// Counter finds or creates the counter (name, labels).
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	e := r.register(name, help, kindCounter, labels)
	if e.counter == nil {
		e.counter = &Counter{}
	}
	return e.counter
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by n. Negative n is ignored: counters are
// monotone by contract and a decrement is always a call-site bug.
func (c *Counter) Add(n int64) {
	if c == nil || n < 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// ---- Gauge ----

// A Gauge is a value that can go up and down. Obtain one from
// Registry.Gauge. All methods are nil-safe.
type Gauge struct {
	v atomic.Int64
}

// Gauge finds or creates the gauge (name, labels).
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	e := r.register(name, help, kindGauge, labels)
	if e.gauge == nil {
		e.gauge = &Gauge{}
	}
	return e.gauge
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adds n (which may be negative).
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// CounterFunc registers a counter whose value is computed by f at
// exposition time — the bridge for monotone counts a component already
// tracks in its own atomics (e.g. receiver Stats): the hot path keeps its
// single existing increment and the registry reads it only when scraped.
// f must be monotone non-decreasing and safe to call from any goroutine.
func (r *Registry) CounterFunc(name, help string, f func() int64, labels ...Label) {
	e := r.register(name, help, kindCounter, labels)
	if e.gfunc == nil {
		e.gfunc = f
	}
}

// GaugeFunc registers a gauge whose value is computed by f at exposition
// time — the natural shape for instantaneous facts the program already
// tracks, like channel queue depths (len(ch) is already atomic-ish and
// costs nothing until somebody scrapes). f must be safe to call from any
// goroutine.
func (r *Registry) GaugeFunc(name, help string, f func() int64, labels ...Label) {
	e := r.register(name, help, kindGauge, labels)
	if e.gfunc == nil {
		e.gfunc = f
	}
}

// ---- Histogram ----

// histBuckets is one bucket per possible bit length of a non-negative
// int64: bucket i holds values v with bits.Len64(v) == i, i.e. the range
// [2^(i-1), 2^i - 1]; bucket 0 holds exactly 0. Exponential (base-2)
// buckets give ~constant relative error (≤2x) across nine decades —
// nanoseconds to minutes — which is the right resolution for latency
// tails, and make the record path a single bits.Len64 plus an array index.
const histBuckets = 65

// A Histogram is a log₂-bucketed distribution of non-negative int64
// samples (by convention: nanoseconds for latencies, bytes for sizes).
// Record is lock-free and allocation-free; Snapshot derives percentiles.
// Obtain one from Registry.Histogram. All methods are nil-safe, so a nil
// *Histogram is a valid "not instrumented" sentinel on hot paths.
type Histogram struct {
	sum     atomic.Int64
	max     atomic.Int64
	buckets [histBuckets]atomic.Uint64
}

// Histogram finds or creates the histogram (name, labels).
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	e := r.register(name, help, kindHistogram, labels)
	if e.hist == nil {
		e.hist = &Histogram{}
	}
	return e.hist
}

// Record adds one sample. Negative samples clamp to 0 (they can only come
// from clock steps; losing them beats corrupting the bucket index).
func (h *Histogram) Record(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.buckets[bits.Len64(uint64(v))].Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Observe records a duration in nanoseconds.
func (h *Histogram) Observe(d time.Duration) { h.Record(int64(d)) }

// Since records the nanoseconds elapsed since start — the one-liner for
// deferred latency recording: defer h.Since(time.Now()).
func (h *Histogram) Since(start time.Time) {
	if h == nil {
		return
	}
	h.Record(int64(time.Since(start)))
}

// A HistogramSnapshot is a point-in-time summary. Percentiles are
// upper-bound estimates from the bucket boundaries (within 2x of the true
// value, clamped to the observed Max); Max itself is exact.
type HistogramSnapshot struct {
	Count uint64
	Sum   int64
	Max   int64
	P50   int64
	P90   int64
	P99   int64
}

// Snapshot summarizes the histogram. Concurrent Records may land between
// the individual bucket loads; Count is derived from the loaded buckets so
// the snapshot is internally consistent.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	var b [histBuckets]uint64
	var total uint64
	for i := range b {
		b[i] = h.buckets[i].Load()
		total += b[i]
	}
	s := HistogramSnapshot{Count: total, Sum: h.sum.Load(), Max: h.max.Load()}
	s.P50 = clampMax(quantile(&b, total, 0.50), s.Max)
	s.P90 = clampMax(quantile(&b, total, 0.90), s.Max)
	s.P99 = clampMax(quantile(&b, total, 0.99), s.Max)
	return s
}

func clampMax(v, max int64) int64 {
	if v > max {
		return max
	}
	return v
}

// quantile returns the upper bound of the bucket holding the q-th ranked
// sample.
func quantile(b *[histBuckets]uint64, total uint64, q float64) int64 {
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i := range b {
		cum += b[i]
		if cum >= rank {
			return bucketUpper(i)
		}
	}
	return bucketUpper(histBuckets - 1)
}

// bucketUpper is the largest value bucket i can hold: 2^i - 1 (bucket 0
// holds only 0; the last bucket is open-ended at MaxInt64).
func bucketUpper(i int) int64 {
	if i <= 0 {
		return 0
	}
	if i >= 63 {
		return math.MaxInt64
	}
	return (1 << uint(i)) - 1
}
