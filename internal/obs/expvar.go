// Expvar compat bridge: the repo's processes already expose an unregistered
// expvar.Map on /debug/vars, and ops tooling scrapes that JSON. Expvar
// renders the whole registry as one expvar.Var so a single
// vars.Set("siren_metrics", reg.Expvar()) keeps both worlds in sync without
// double instrumentation. Nothing here touches the global expvar registry.

package obs

import (
	"expvar"
)

// Expvar returns an expvar.Var whose value is the registry as a JSON
// object: counters and gauges as integers, histograms as
// {"count","sum","max","p50","p90","p99"} summaries (percentiles in the
// sample unit, nanoseconds for latencies). Labeled children are keyed as
// name{k="v",...} — the same child naming the Prometheus exposition uses.
func (r *Registry) Expvar() expvar.Var {
	return expvar.Func(func() any {
		out := make(map[string]any)
		for _, f := range r.sortedFamilies() {
			for _, e := range f.entries {
				key := f.name + renderLabels(e.labels, "", 0)
				switch {
				case e.counter != nil:
					out[key] = e.counter.Value()
				case e.gauge != nil:
					out[key] = e.gauge.Value()
				case e.gfunc != nil:
					out[key] = e.gfunc()
				case e.hist != nil:
					s := e.hist.Snapshot()
					out[key] = map[string]any{
						"count": s.Count,
						"sum":   s.Sum,
						"max":   s.Max,
						"p50":   s.P50,
						"p90":   s.P90,
						"p99":   s.P99,
					}
				}
			}
		}
		return out
	})
}
