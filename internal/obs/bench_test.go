package obs

import (
	"strings"
	"sync/atomic"
	"testing"
)

// BenchmarkHistogramRecord is bench-gated: the record path is what every
// ingest datagram and every WAL append pays, so it must stay lock-free and
// allocation-free (the gate also watches ns/op; allocs/op is asserted
// here directly — the acceptance bar is ≤2, the implementation does 0).
func BenchmarkHistogramRecord(b *testing.B) {
	r := NewRegistry("bench")
	h := r.Histogram("siren_bench_ns", "")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		var v int64
		for pb.Next() {
			v = (v + 1037) & 0xfffff
			h.Record(v)
		}
	})
}

func TestHistogramRecordAllocs(t *testing.T) {
	r := NewRegistry("alloc")
	h := r.Histogram("siren_alloc_ns", "")
	var v atomic.Int64
	allocs := testing.AllocsPerRun(1000, func() {
		h.Record(v.Add(977))
	})
	if allocs > 2 {
		t.Fatalf("Record allocates %.1f times per op, want <= 2", allocs)
	}
}

func BenchmarkHistogramSnapshot(b *testing.B) {
	r := NewRegistry("bench")
	h := r.Histogram("siren_bench_ns", "")
	for i := int64(1); i < 1<<40; i *= 2 {
		h.Record(i)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = h.Snapshot()
	}
}

func BenchmarkWritePrometheus(b *testing.B) {
	r := NewRegistry("bench")
	for i := 0; i < 8; i++ {
		h := r.Histogram("siren_bench_ns", "", L("shard", string(rune('0'+i))))
		for v := int64(1); v < 1<<30; v *= 2 {
			h.Record(v)
		}
	}
	b.ReportAllocs()
	var sb strings.Builder
	for i := 0; i < b.N; i++ {
		sb.Reset()
		_ = r.WritePrometheus(&sb)
	}
}
