package obs

import (
	"io"
	"strconv"
	"testing"
)

func TestReproRegisterScrapeRace(t *testing.T) {
	r := NewRegistry("x")
	r.Counter("siren_x_total", "", L("i", "seed")).Inc()
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = r.WritePrometheus(io.Discard)
		}
	}()
	for i := 0; i < 5000; i++ {
		r.Counter("siren_x_total", "", L("i", strconv.Itoa(i))).Inc()
	}
	close(stop)
	<-done
}
