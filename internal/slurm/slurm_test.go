package slurm

import (
	"testing"

	"siren/internal/ldso"
	"siren/internal/procfs"
	"siren/internal/toolchain"
)

type recordingHook struct {
	starts []string // exe paths
	exits  []string
	times  []int64
}

func (h *recordingHook) OnProcessStart(ev ProcessEvent) {
	h.starts = append(h.starts, ev.Proc.Exe)
	h.times = append(h.times, ev.Time)
}
func (h *recordingHook) OnProcessExit(ev ProcessEvent) {
	h.exits = append(h.exits, ev.Proc.Exe)
}

func testRuntime(t *testing.T) (*Runtime, *recordingHook) {
	t.Helper()
	fs := procfs.NewFS()
	cache := ldso.NewCache()
	cache.Register(ldso.Library{Soname: "libc.so.6", Path: "/lib64/libc.so.6"})
	cache.Register(ldso.Library{Soname: "siren.so", Path: "/opt/siren/lib/siren.so"})
	fs.Install("/lib64/libc.so.6", []byte("libc"), procfs.FileMeta{})
	fs.Install("/opt/siren/lib/siren.so", []byte("siren"), procfs.FileMeta{})

	compileTo := func(path, name string, static bool) {
		art, err := toolchain.Compile(
			toolchain.Source{Name: name, Version: "1.0"},
			toolchain.BuildOptions{Compilers: []toolchain.Compiler{toolchain.GCCSUSE}, Static: static})
		if err != nil {
			t.Fatal(err)
		}
		fs.Install(path, art.Binary, procfs.FileMeta{})
	}
	compileTo("/usr/bin/bash", "bash", false)
	compileTo("/usr/bin/mkdir", "mkdir", false)
	compileTo("/usr/bin/static-app", "static-app", true)

	rt := NewRuntime(fs, procfs.NewTable(0), cache, NewClock(1733900000))
	hook := &recordingHook{}
	rt.Hook = hook
	return rt, hook
}

func preloadEnv() map[string]string {
	return map[string]string{"LD_PRELOAD": "/opt/siren/lib/siren.so"}
}

func TestRunFiresHooks(t *testing.T) {
	rt, hook := testRuntime(t)
	p, err := rt.Run("/usr/bin/bash", ExecOptions{PPID: 1, UID: 1000, Env: preloadEnv()}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(hook.starts) != 1 || hook.starts[0] != "/usr/bin/bash" {
		t.Errorf("starts = %q", hook.starts)
	}
	if len(hook.exits) != 1 {
		t.Errorf("exits = %q", hook.exits)
	}
	if p.ExitTime <= p.StartTime {
		t.Errorf("exit %d not after start %d", p.ExitTime, p.StartTime)
	}
}

func TestNoPreloadNoHooks(t *testing.T) {
	rt, hook := testRuntime(t)
	if _, err := rt.Run("/usr/bin/bash", ExecOptions{PPID: 1}, nil); err != nil {
		t.Fatal(err)
	}
	if len(hook.starts) != 0 {
		t.Errorf("hooks fired without preload: %q", hook.starts)
	}
}

func TestStaticBinaryNoHooks(t *testing.T) {
	rt, hook := testRuntime(t)
	if _, err := rt.Run("/usr/bin/static-app", ExecOptions{PPID: 1, Env: preloadEnv()}, nil); err != nil {
		t.Fatal(err)
	}
	if len(hook.starts) != 0 {
		t.Error("static binary must not trigger hooks")
	}
}

func TestContainerNoHooks(t *testing.T) {
	rt, hook := testRuntime(t)
	if _, err := rt.Run("/usr/bin/bash", ExecOptions{PPID: 1, Env: preloadEnv(), Container: true}, nil); err != nil {
		t.Fatal(err)
	}
	if len(hook.starts) != 0 {
		t.Error("containerised process must not trigger hooks (preload path unmounted)")
	}
}

func TestKilledProcessSkipsDestructor(t *testing.T) {
	rt, hook := testRuntime(t)
	if _, err := rt.Run("/usr/bin/bash", ExecOptions{PPID: 1, Env: preloadEnv(), Killed: true}, nil); err != nil {
		t.Fatal(err)
	}
	if len(hook.starts) != 1 || len(hook.exits) != 0 {
		t.Errorf("starts=%d exits=%d, want 1/0", len(hook.starts), len(hook.exits))
	}
}

func TestRunExecSamePIDSameSecond(t *testing.T) {
	rt, hook := testRuntime(t)
	p, err := rt.RunExec("/usr/bin/bash", "/usr/bin/mkdir", ExecOptions{PPID: 1, Env: preloadEnv()})
	if err != nil {
		t.Fatal(err)
	}
	if len(hook.starts) != 2 {
		t.Fatalf("starts = %q, want both images", hook.starts)
	}
	if hook.starts[0] != "/usr/bin/bash" || hook.starts[1] != "/usr/bin/mkdir" {
		t.Errorf("starts = %q", hook.starts)
	}
	if hook.times[0] != hook.times[1] {
		t.Errorf("exec images got different timestamps: %v", hook.times)
	}
	// Only the final image's destructor runs.
	if len(hook.exits) != 1 || hook.exits[0] != "/usr/bin/mkdir" {
		t.Errorf("exits = %q", hook.exits)
	}
	if p.Exe != "/usr/bin/mkdir" {
		t.Errorf("final exe = %q", p.Exe)
	}
}

func TestBodyRunsBetweenHooks(t *testing.T) {
	rt, hook := testRuntime(t)
	var sawStart bool
	_, err := rt.Run("/usr/bin/bash", ExecOptions{PPID: 1, Env: preloadEnv()}, func(p *procfs.Proc) error {
		sawStart = len(hook.starts) == 1 && len(hook.exits) == 0
		// Launch a child from within the body.
		_, err := rt.Run("/usr/bin/mkdir", ExecOptions{PPID: p.PID, Env: p.Env}, nil)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sawStart {
		t.Error("body did not run between constructor and destructor")
	}
	if len(hook.starts) != 2 {
		t.Errorf("child hook missing: %q", hook.starts)
	}
}

func TestMissingExecutable(t *testing.T) {
	rt, _ := testRuntime(t)
	if _, err := rt.Run("/no/such/binary", ExecOptions{PPID: 1}, nil); err == nil {
		t.Error("expected error for missing executable")
	}
	if rt.Table.Live() != 0 {
		t.Error("failed exec leaked a process")
	}
}

func TestNonELFExecutable(t *testing.T) {
	rt, _ := testRuntime(t)
	rt.FS.Install("/usr/bin/script.sh", []byte("#!/bin/sh\necho hi\n"), procfs.FileMeta{})
	if _, err := rt.Run("/usr/bin/script.sh", ExecOptions{PPID: 1}, nil); err == nil {
		t.Error("non-ELF image must fail exec")
	}
	if rt.Table.Live() != 0 {
		t.Error("failed exec leaked a process")
	}
}

func TestClusterAndJobEnv(t *testing.T) {
	c := NewCluster("lumi", 16)
	if len(c.Nodes()) != 16 || c.Node(0) != "nid001001" || c.Node(16) != "nid001001" {
		t.Errorf("nodes = %v", c.Nodes()[:2])
	}
	id1, id2 := c.NextJobID(), c.NextJobID()
	if id2 != id1+1 {
		t.Errorf("job ids %d, %d", id1, id2)
	}
	j := Job{ID: 42, Name: "my-sim", User: "user_3", UID: 1003, Node: c.Node(3)}
	env := j.TaskEnv(map[string]string{"LD_PRELOAD": "/opt/siren/lib/siren.so"}, 0, 5)
	for k, want := range map[string]string{
		"SLURM_JOB_ID": "42", "SLURM_STEP_ID": "0", "SLURM_PROCID": "5",
		"HOSTNAME": "nid001004", "USER": "user_3", "SLURM_JOB_NAME": "my-sim",
		"LD_PRELOAD": "/opt/siren/lib/siren.so",
	} {
		if env[k] != want {
			t.Errorf("env[%s] = %q, want %q", k, env[k], want)
		}
	}
}

func TestClockMonotonic(t *testing.T) {
	c := NewClock(100)
	if c.Now() != 100 {
		t.Error("start time wrong")
	}
	if c.Advance(5) != 105 || c.Now() != 105 {
		t.Error("advance wrong")
	}
	done := make(chan bool)
	for i := 0; i < 4; i++ {
		go func() {
			for j := 0; j < 1000; j++ {
				c.Advance(1)
			}
			done <- true
		}()
	}
	for i := 0; i < 4; i++ {
		<-done
	}
	if c.Now() != 4105 {
		t.Errorf("concurrent advance lost updates: %d", c.Now())
	}
}
