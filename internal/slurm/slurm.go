// Package slurm simulates the Slurm workload manager surface that SIREN
// observes: job and step identity, the environment variables injected into
// every task (SLURM_JOB_ID, SLURM_STEP_ID, SLURM_PROCID, HOSTNAME), and a
// process runtime that launches executables through the simulated dynamic
// linker, firing constructor/destructor hooks exactly when the real
// LD_PRELOAD mechanism would.
package slurm

import (
	"fmt"
	"sync"
	"sync/atomic"

	"siren/internal/ldso"
	"siren/internal/procfs"
)

// Cluster models the machine: a name and a set of compute nodes.
type Cluster struct {
	Name    string
	nodes   []string
	nextJob int64
}

// NewCluster creates a cluster with n nodes named nid001001, nid001002, ….
func NewCluster(name string, n int) *Cluster {
	c := &Cluster{Name: name}
	for i := 0; i < n; i++ {
		c.nodes = append(c.nodes, fmt.Sprintf("nid%06d", 1001+i))
	}
	return c
}

// Nodes returns the node names.
func (c *Cluster) Nodes() []string { return append([]string(nil), c.nodes...) }

// Node returns node i modulo the node count.
func (c *Cluster) Node(i int) string { return c.nodes[i%len(c.nodes)] }

// NextJobID allocates a cluster-unique job ID (thread-safe).
func (c *Cluster) NextJobID() int { return int(atomic.AddInt64(&c.nextJob, 1)) }

// Job carries the identity Slurm assigns to one submitted job.
type Job struct {
	ID   int
	Name string // user-chosen job name: arbitrary, the unreliable identifier
	User string
	UID  uint32
	GID  uint32
	Node string
}

// TaskEnv renders the environment Slurm injects into a task of the given
// step and rank, merged over base (base wins nothing; Slurm overwrites).
func (j Job) TaskEnv(base map[string]string, stepID, procID int) map[string]string {
	env := procfs.CloneEnv(base)
	env["SLURM_JOB_ID"] = fmt.Sprintf("%d", j.ID)
	env["SLURM_JOB_NAME"] = j.Name
	env["SLURM_STEP_ID"] = fmt.Sprintf("%d", stepID)
	env["SLURM_PROCID"] = fmt.Sprintf("%d", procID)
	env["HOSTNAME"] = j.Node
	env["USER"] = j.User
	return env
}

// Clock is a simulated wall clock with one-second granularity, shared by a
// whole simulation so records sort consistently. It is safe for concurrent
// use.
type Clock struct {
	mu  sync.Mutex
	now int64
}

// NewClock starts at the given unix time.
func NewClock(start int64) *Clock { return &Clock{now: start} }

// Now returns the current simulated time.
func (c *Clock) Now() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward by d seconds and returns the new time.
func (c *Clock) Advance(d int64) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now += d
	return c.now
}

// Hook receives process lifecycle events, the way siren.so's constructor and
// destructor do. Implementations must tolerate any process state and must
// not fail the process (graceful-failure contract).
type Hook interface {
	// OnProcessStart fires after the dynamic linker loaded the preload,
	// before main() — the __attribute__((constructor)) moment.
	OnProcessStart(ev ProcessEvent)
	// OnProcessExit fires at normal process termination — the destructor.
	// It does not fire when the image is replaced by exec() or the process
	// is killed, matching real destructor semantics.
	OnProcessExit(ev ProcessEvent)
}

// ProcessEvent is the context handed to hooks.
type ProcessEvent struct {
	Proc *procfs.Proc
	Link *ldso.LinkResult
	FS   *procfs.FS
	Time int64
}

// Runtime launches simulated processes: it resolves the executable in the
// filesystem, runs the dynamic linker, installs the memory map, and fires
// hooks when (and only when) the SIREN preload actually loaded.
type Runtime struct {
	FS     *procfs.FS
	Table  *procfs.Table
	Cache  *ldso.Cache
	Clock  *Clock
	Hook   Hook   // may be nil
	HookSO string // soname whose successful preload triggers Hook (default "siren.so")
}

// NewRuntime wires a runtime from its parts.
func NewRuntime(fs *procfs.FS, table *procfs.Table, cache *ldso.Cache, clock *Clock) *Runtime {
	return &Runtime{FS: fs, Table: table, Cache: cache, Clock: clock, HookSO: "siren.so"}
}

// ExecOptions configure one process execution.
type ExecOptions struct {
	PPID      int
	UID, GID  uint32
	Env       map[string]string
	Container bool
	ExtraMaps []procfs.Region // e.g. Python extension modules
	Runtime   int64           // seconds between start and exit (default 1)
	Killed    bool            // abnormal termination: destructor does not run
}

// Run executes the complete lifecycle of one process: spawn, link, hooks,
// optional body (in which children may be launched), exit. It returns the
// process (already exited). Errors come only from simulation misuse (missing
// executable); data-collection failures never propagate.
func (rt *Runtime) Run(exePath string, opts ExecOptions, body func(p *procfs.Proc) error) (*procfs.Proc, error) {
	img, err := rt.FS.ReadFile(exePath)
	if err != nil {
		return nil, fmt.Errorf("slurm: exec %s: %w", exePath, err)
	}
	now := rt.Clock.Now()
	proc, err := rt.Table.Spawn(opts.PPID, exePath, opts.Env, opts.UID, opts.GID, now)
	if err != nil {
		return nil, err
	}
	proc.Container = opts.Container

	link, err := ldso.Link(img, exePath, proc.Env, rt.Cache, rt.FS, opts.Container)
	if err != nil {
		// Not a loadable image: the kernel would refuse exec. Clean up.
		rt.Table.Exit(proc.PID, now)
		return nil, err
	}
	proc.Maps = append(link.Maps, opts.ExtraMaps...)

	hooked := rt.Hook != nil && !link.Static && link.HasPreload(rt.hookSO())
	if hooked {
		rt.Hook.OnProcessStart(ProcessEvent{Proc: proc, Link: link, FS: rt.FS, Time: now})
	}

	if body != nil {
		if err := body(proc); err != nil {
			rt.Table.Exit(proc.PID, rt.Clock.Now())
			return proc, err
		}
	}

	runFor := opts.Runtime
	if runFor <= 0 {
		runFor = 1
	}
	end := rt.Clock.Advance(runFor)
	if hooked && !opts.Killed {
		rt.Hook.OnProcessExit(ProcessEvent{Proc: proc, Link: link, FS: rt.FS, Time: end})
	}
	if err := rt.Table.Exit(proc.PID, end); err != nil {
		return proc, err
	}
	return proc, nil
}

// RunExec models a process that replaces itself via exec(): first image
// start hooks fire, then the image is swapped (no destructor), then the new
// image's start and exit hooks fire. Both images share PID and, because the
// clock only advances at exit, the same start timestamp — the collision case
// the executable-path hash disambiguates.
func (rt *Runtime) RunExec(firstExe, secondExe string, opts ExecOptions) (*procfs.Proc, error) {
	img1, err := rt.FS.ReadFile(firstExe)
	if err != nil {
		return nil, fmt.Errorf("slurm: exec %s: %w", firstExe, err)
	}
	img2, err := rt.FS.ReadFile(secondExe)
	if err != nil {
		return nil, fmt.Errorf("slurm: exec %s: %w", secondExe, err)
	}
	now := rt.Clock.Now()
	proc, err := rt.Table.Spawn(opts.PPID, firstExe, opts.Env, opts.UID, opts.GID, now)
	if err != nil {
		return nil, err
	}
	proc.Container = opts.Container

	link1, err := ldso.Link(img1, firstExe, proc.Env, rt.Cache, rt.FS, opts.Container)
	if err != nil {
		rt.Table.Exit(proc.PID, now)
		return nil, err
	}
	proc.Maps = link1.Maps
	if rt.Hook != nil && !link1.Static && link1.HasPreload(rt.hookSO()) {
		rt.Hook.OnProcessStart(ProcessEvent{Proc: proc, Link: link1, FS: rt.FS, Time: now})
	}

	// exec(): same PID, same second, new image; old destructors never run.
	if _, err := rt.Table.Exec(proc.PID, secondExe, now); err != nil {
		return proc, err
	}
	link2, err := ldso.Link(img2, secondExe, proc.Env, rt.Cache, rt.FS, opts.Container)
	if err != nil {
		rt.Table.Exit(proc.PID, now)
		return proc, err
	}
	proc.Maps = link2.Maps
	hooked2 := rt.Hook != nil && !link2.Static && link2.HasPreload(rt.hookSO())
	if hooked2 {
		rt.Hook.OnProcessStart(ProcessEvent{Proc: proc, Link: link2, FS: rt.FS, Time: now})
	}

	runFor := opts.Runtime
	if runFor <= 0 {
		runFor = 1
	}
	end := rt.Clock.Advance(runFor)
	if hooked2 && !opts.Killed {
		rt.Hook.OnProcessExit(ProcessEvent{Proc: proc, Link: link2, FS: rt.FS, Time: end})
	}
	if err := rt.Table.Exit(proc.PID, end); err != nil {
		return proc, err
	}
	return proc, nil
}

func (rt *Runtime) hookSO() string {
	if rt.HookSO == "" {
		return "siren.so"
	}
	return rt.HookSO
}
