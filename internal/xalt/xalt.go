// Package xalt implements an XALT-style baseline collector for comparison
// with SIREN (paper §5, Related Work).
//
// XALT also hooks processes via LD_PRELOAD, but differs in the two ways the
// paper contrasts:
//
//   - it identifies executables by a *cryptographic* hash (sha1), so any
//     rebuild — new compiler, bumped version, one-line patch — produces an
//     unrelated identifier and recognition fails (the avalanche effect);
//   - it emits one JSON file per hooked process instead of fire-and-forget
//     UDP, trading robustness for filesystem load.
//
// The Index type provides exact-hash recognition; the ablation bench
// contrasts its recall across recompiled variants with SIREN's fuzzy
// matching.
package xalt

import (
	"crypto/sha1"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"siren/internal/lmod"
	"siren/internal/slurm"
)

// Record is one XALT-style process record.
type Record struct {
	JobID   string   `json:"job_id"`
	PID     int      `json:"pid"`
	Exe     string   `json:"exe"`
	SHA1    string   `json:"sha1"`
	Modules []string `json:"modules,omitempty"`
	Objects []string `json:"objects,omitempty"`
	Time    int64    `json:"time"`
}

// Sha1Hex returns the hex sha1 of data — XALT's executable identifier.
func Sha1Hex(data []byte) string {
	sum := sha1.Sum(data)
	return hex.EncodeToString(sum[:])
}

// Collector implements slurm.Hook, writing one JSON file per process into
// Dir (XALT's collection model). A nil Dir collects in memory only.
type Collector struct {
	Dir     string
	mu      sync.Mutex
	records []Record
	files   atomic.Int64
	errs    atomic.Int64
}

// New returns a collector writing JSON files under dir ("" = memory only).
func New(dir string) *Collector { return &Collector{Dir: dir} }

// Records returns the collected records (copy).
func (c *Collector) Records() []Record {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Record(nil), c.records...)
}

// FilesWritten reports how many JSON files were created.
func (c *Collector) FilesWritten() int64 { return c.files.Load() }

// Errors reports swallowed failures.
func (c *Collector) Errors() int64 { return c.errs.Load() }

// OnProcessStart hashes the executable and records the environment.
func (c *Collector) OnProcessStart(ev slurm.ProcessEvent) {
	img, err := ev.FS.ReadFile(ev.Proc.Exe)
	if err != nil {
		c.errs.Add(1)
		return
	}
	rec := Record{
		JobID:   ev.Proc.Getenv("SLURM_JOB_ID"),
		PID:     ev.Proc.PID,
		Exe:     ev.Proc.Exe,
		SHA1:    Sha1Hex(img),
		Modules: lmod.ParseLoadedModules(ev.Proc.Getenv("LOADEDMODULES")),
		Objects: ev.Link.LoadedPaths(),
		Time:    ev.Time,
	}
	c.mu.Lock()
	c.records = append(c.records, rec)
	c.mu.Unlock()

	if c.Dir == "" {
		return
	}
	// One file per process — the failure mode SIREN's UDP design avoids.
	name := fmt.Sprintf("xalt_%s_%d_%d.json", rec.JobID, rec.PID, rec.Time)
	data, err := json.Marshal(rec)
	if err != nil {
		c.errs.Add(1)
		return
	}
	if err := os.WriteFile(filepath.Join(c.Dir, name), data, 0o644); err != nil {
		c.errs.Add(1)
		return
	}
	c.files.Add(1)
}

// OnProcessExit is a no-op: XALT's link-time record has no destructor data
// we model.
func (c *Collector) OnProcessExit(ev slurm.ProcessEvent) {}

var _ slurm.Hook = (*Collector)(nil)

// Index supports exact-hash recognition over collected records.
type Index struct {
	byHash map[string][]Record
}

// NewIndex builds an index over records.
func NewIndex(records []Record) *Index {
	idx := &Index{byHash: make(map[string][]Record)}
	for _, r := range records {
		idx.byHash[r.SHA1] = append(idx.byHash[r.SHA1], r)
	}
	return idx
}

// Recognize returns records with exactly this sha1 — the only recognition
// XALT-style cryptographic hashing supports.
func (idx *Index) Recognize(sha1hex string) []Record {
	return idx.byHash[sha1hex]
}

// Len reports the number of distinct hashes.
func (idx *Index) Len() int { return len(idx.byHash) }
