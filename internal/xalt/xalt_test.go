package xalt

import (
	"os"
	"path/filepath"
	"testing"

	"siren/internal/ldso"
	"siren/internal/procfs"
	"siren/internal/slurm"
	"siren/internal/ssdeep"
	"siren/internal/toolchain"
)

func world(t *testing.T, hookDir string) (*slurm.Runtime, *Collector) {
	t.Helper()
	fs := procfs.NewFS()
	cache := ldso.NewCache()
	cache.Register(ldso.Library{Soname: "libc.so.6", Path: "/lib64/libc.so.6"})
	cache.Register(ldso.Library{Soname: "xalt.so", Path: "/opt/xalt/lib/xalt.so"})
	fs.Install("/lib64/libc.so.6", []byte("so"), procfs.FileMeta{})
	fs.Install("/opt/xalt/lib/xalt.so", []byte("so"), procfs.FileMeta{})
	art, err := toolchain.Compile(
		toolchain.Source{Name: "app", Version: "1.0", Functions: []string{"main"}},
		toolchain.BuildOptions{Compilers: []toolchain.Compiler{toolchain.GCCSUSE}})
	if err != nil {
		t.Fatal(err)
	}
	fs.Install("/users/u/app", art.Binary, procfs.FileMeta{})

	col := New(hookDir)
	rt := slurm.NewRuntime(fs, procfs.NewTable(0), cache, slurm.NewClock(1733900000))
	rt.Hook = col
	rt.HookSO = "xalt.so"
	return rt, col
}

func xaltEnv() map[string]string {
	return map[string]string{
		"LD_PRELOAD":    "/opt/xalt/lib/xalt.so",
		"SLURM_JOB_ID":  "12",
		"LOADEDMODULES": "gcc/13.3.0",
	}
}

func TestCollectAndIndex(t *testing.T) {
	dir := t.TempDir()
	rt, col := world(t, dir)
	if _, err := rt.Run("/users/u/app", slurm.ExecOptions{PPID: 1, Env: xaltEnv()}, nil); err != nil {
		t.Fatal(err)
	}
	recs := col.Records()
	if len(recs) != 1 {
		t.Fatalf("records = %d", len(recs))
	}
	r := recs[0]
	if r.JobID != "12" || len(r.SHA1) != 40 || len(r.Modules) != 1 {
		t.Errorf("record = %+v", r)
	}
	if col.FilesWritten() != 1 {
		t.Errorf("files = %d", col.FilesWritten())
	}
	files, _ := os.ReadDir(dir)
	if len(files) != 1 || filepath.Ext(files[0].Name()) != ".json" {
		t.Errorf("dir = %v", files)
	}

	idx := NewIndex(recs)
	if got := idx.Recognize(r.SHA1); len(got) != 1 {
		t.Errorf("Recognize = %v", got)
	}
	if got := idx.Recognize("0000000000000000000000000000000000000000"); got != nil {
		t.Errorf("bogus hash recognised: %v", got)
	}
	if idx.Len() != 1 {
		t.Errorf("Len = %d", idx.Len())
	}
}

// TestAvalancheDefeatsExactHash is the core contrast with SIREN: a recompile
// changes sha1 completely, so exact-hash recognition fails while fuzzy
// similarity remains high.
func TestAvalancheDefeatsExactHash(t *testing.T) {
	src := toolchain.Source{Name: "icon", Version: "2.6.4",
		Functions: []string{"icon_run"}, CodeKB: 64}
	a1, err := toolchain.Compile(src, toolchain.BuildOptions{Compilers: []toolchain.Compiler{toolchain.GCCSUSE}})
	if err != nil {
		t.Fatal(err)
	}
	a2, err := toolchain.Compile(src, toolchain.BuildOptions{Compilers: []toolchain.Compiler{toolchain.ClangCray}})
	if err != nil {
		t.Fatal(err)
	}
	if Sha1Hex(a1.Binary) == Sha1Hex(a2.Binary) {
		t.Fatal("recompile should change sha1")
	}
	idx := NewIndex([]Record{{Exe: "/x/icon", SHA1: Sha1Hex(a1.Binary)}})
	if got := idx.Recognize(Sha1Hex(a2.Binary)); got != nil {
		t.Error("exact hash must not recognise the recompile")
	}
	h1, _ := ssdeep.Hash(a1.Binary)
	h2, _ := ssdeep.Hash(a2.Binary)
	score, err := ssdeep.Compare(h1, h2)
	if err != nil {
		t.Fatal(err)
	}
	if score < 60 {
		t.Errorf("fuzzy score across recompile = %d, want >= 60", score)
	}
}

func TestMemoryOnlyMode(t *testing.T) {
	rt, col := world(t, "")
	if _, err := rt.Run("/users/u/app", slurm.ExecOptions{PPID: 1, Env: xaltEnv()}, nil); err != nil {
		t.Fatal(err)
	}
	if col.FilesWritten() != 0 || len(col.Records()) != 1 {
		t.Error("memory-only mode misbehaved")
	}
}

func TestGracefulOnMissingExe(t *testing.T) {
	rt, col := world(t, "")
	// Simulate a hook event whose exe vanished between exec and collection.
	ev := slurm.ProcessEvent{
		Proc: &procfs.Proc{Exe: "/gone", Env: xaltEnv()},
		Link: &ldso.LinkResult{},
		FS:   procfs.NewFS(),
		Time: 1,
	}
	_ = rt
	col.OnProcessStart(ev)
	if col.Errors() != 1 || len(col.Records()) != 0 {
		t.Errorf("errors=%d records=%d", col.Errors(), len(col.Records()))
	}
}
